"""Unit tests for the serve wire protocol (framing, HELLO, REPORT)."""

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    FRAME_EPOCH,
    FRAME_HELLO,
    FRAME_NAMES,
    HEADER_SIZE,
    MAX_FRAME,
    ProtocolError,
    decode_header,
    decode_json_payload,
    encode_frame,
    encode_json_frame,
    error_payload,
    format_report,
    make_hello,
    resume_token,
    validate_hello,
)


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame(FRAME_EPOCH, b"payload")
        ftype, length = decode_header(frame[:HEADER_SIZE])
        assert ftype == FRAME_EPOCH
        assert length == 7
        assert frame[HEADER_SIZE:] == b"payload"

    def test_json_round_trip(self):
        frame = encode_json_frame(FRAME_HELLO, {"a": 1})
        ftype, length = decode_header(frame[:HEADER_SIZE])
        assert decode_json_payload(ftype, frame[HEADER_SIZE:]) == {"a": 1}

    def test_unknown_frame_type_rejected(self):
        header = encode_frame(FRAME_EPOCH, b"")[:HEADER_SIZE]
        bogus = bytes([0x7F]) + header[1:]
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode_header(bogus)

    def test_oversized_length_prefix_is_corruption(self):
        # A corrupt length prefix must be rejected before any buffering.
        bogus = bytes([FRAME_EPOCH]) + (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="treating as corruption"):
            decode_header(bogus)

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(FRAME_EPOCH, b"x" * (MAX_FRAME + 1))

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_json_payload(FRAME_HELLO, b"{oops")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_json_payload(FRAME_HELLO, b"[1,2]")

    def test_every_frame_type_named(self):
        assert set(FRAME_NAMES.values()) == {
            "HELLO", "EPOCH", "END", "ACK", "REPORT", "ERROR"
        }


def hello(**overrides):
    base = make_hello("s1", 2, 5, [16, 32], "addrcheck")
    base.update(overrides)
    return base


class TestHello:
    def test_make_hello_validates(self):
        record = validate_hello(hello())
        assert record["stream"] == "s1"
        assert record["preallocated"] == [16, 32]

    @pytest.mark.parametrize("overrides,match", [
        ({"format": "other"}, "greeting"),
        ({"version": 99}, "version"),
        ({"stream": ""}, "stream id"),
        ({"stream": 7}, "stream id"),
        ({"threads": 0}, "thread count"),
        ({"epochs": -1}, "epoch count"),
        ({"preallocated": "nope"}, "preallocated"),
        ({"preallocated": ["x"]}, "preallocated"),
        ({"lifeguard": "bouncer"}, "lifeguard"),
        ({"token": 5}, "token"),
    ])
    def test_bad_hello_rejected(self, overrides, match):
        with pytest.raises(ProtocolError, match=match):
            validate_hello(hello(**overrides))


class TestResumeToken:
    def test_deterministic_and_filesystem_safe(self):
        a = resume_token(hello())
        b = resume_token(hello())
        assert a == b
        assert len(a) == 32
        int(a, 16)  # pure hex: safe as a checkpoint filename stem

    def test_identity_fields_change_the_token(self):
        base = resume_token(hello())
        assert resume_token(hello(stream="s2")) != base
        assert resume_token(hello(threads=3)) != base
        assert resume_token(hello(epochs=6)) != base
        assert resume_token(hello(lifeguard="taintcheck")) != base
        assert resume_token(hello(preallocated=[16])) != base

    def test_token_field_itself_is_not_identity(self):
        # Reconnecting with the token present must re-derive the same
        # token -- otherwise no resume could ever match.
        assert resume_token(hello(token="ff" * 16)) == resume_token(hello())


class TestReportFormatting:
    def test_error_report_block(self):
        report = {
            "lifeguard": "addrcheck",
            "threads": 2,
            "epochs": 5,
            "window_high_water": 4,
            "window_bound": 6,
            "errors": [
                {"kind": "use-after-free", "location": 255,
                 "ref": [1, 2, 3], "block": None, "detail": ""},
            ] * 3,
        }
        lines = format_report(report, "demo.jsonl", limit=2)
        assert lines[0] == "trace: demo.jsonl, 2 threads, 5 epochs (streamed)"
        assert lines[1] == "flags: 3"
        assert len([l for l in lines if "use-after-free" in l]) == 2
        assert "loc=0xff at (1, 2, 3)" in lines[2]
        assert lines[-1] == "stream: peak resident summaries 4 (bound 6)"

    def test_race_report_block(self):
        report = {
            "lifeguard": "race",
            "threads": 2,
            "epochs": 3,
            "window_high_water": 2,
            "window_bound": 6,
            "races": [
                {"kind": "write-write", "location": 16, "body_ref": [0, 1, 0]},
            ],
        }
        lines = format_report(report, "demo", limit=10)
        assert lines[1] == "potential conflicts: 1"
        assert "write-write" in lines[2]


class TestErrorPayload:
    def test_payload_shape(self):
        payload = error_payload("shed", "overloaded", resume_epoch=4)
        assert payload == {
            "code": "shed", "error": "overloaded", "resume_epoch": 4
        }

    def test_all_ladder_codes_exist(self):
        for code in ("busy", "shed", "timeout", "drain"):
            assert code in ERROR_CODES
