"""Shard backends: process shards must be indistinguishable from
thread shards in every report, and a dead worker process must be
contained to its streams and healed by checkpoint resume."""

import json
import time

import pytest

from repro.errors import ReproError
from repro.resilience.supervisor import RetryPolicy
from repro.serve import (
    SHARD_BACKEND_CHOICES,
    ReproServer,
    ServeConfig,
    ServerThread,
    StreamClient,
    push_trace,
)
from repro.serve.client import read_frame_sync
from repro.serve.protocol import (
    FRAME_END,
    FRAME_EPOCH,
    FRAME_ERROR,
    encode_frame,
    encode_json_frame,
    make_hello,
    resume_token,
)
from repro.serve.shards import build_stream_engine, make_shards

from tests.serve.conftest import offline_report, write_trace
from tests.serve.test_resume import wait_for_checkpoint
from tests.serve.test_server import raw_handshake

FAST = RetryPolicy(backoff_base=0.0, backoff_max=0.0)


def test_choices_cover_both_backends():
    assert SHARD_BACKEND_CHOICES == ("thread", "process")


def test_unknown_shard_backend_rejected():
    with pytest.raises(ReproError, match="unknown shard backend"):
        ReproServer(ServeConfig(shard_backend="greenlet"))
    with pytest.raises(ReproError, match="unknown shard backend"):
        make_shards("greenlet", 2)


def test_build_stream_engine_fresh():
    hello = make_hello("s", 2, 3, (), "addrcheck")
    engine, resume_epoch = build_stream_engine(
        hello, resume_token(hello), None, 1, "serial"
    )
    try:
        assert resume_epoch == 0
        assert engine._next_to_receive == 0
    finally:
        engine.close()


class TestCrossBackendIdentity:
    def test_reports_bit_identical_across_backends(self, tmp_path):
        trace = tmp_path / "t.stream.jsonl"
        write_trace(trace, threads=3, events=400, seed=13)
        reports = {}
        for backend in SHARD_BACKEND_CHOICES:
            config = ServeConfig(
                unix_path=str(tmp_path / f"{backend}.sock"),
                shard_backend=backend,
                workers=2,
            )
            with ServerThread(config) as daemon:
                reports[backend] = push_trace(
                    daemon.address, str(trace), "same-stream"
                )
        expected = offline_report(trace, "same-stream")
        # Bit-identical means bit-identical: compare the serialized
        # bytes, not just dict equality, so key order counts too.
        assert (
            json.dumps(reports["thread"])
            == json.dumps(reports["process"])
            == json.dumps(expected)
        )


class TestWorkerDeath:
    def _worker_proc(self, daemon, stream_id):
        shard = daemon.server.shard_for(stream_id)
        deadline = time.monotonic() + 10.0
        while shard._proc is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert shard._proc is not None, "worker never spawned"
        return shard._proc

    def test_killed_worker_fails_session_resumably(self, tmp_path):
        trace = tmp_path / "t.stream.jsonl"
        write_trace(trace, events=300, seed=3)
        ck = tmp_path / "ck"
        config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"),
            checkpoint_dir=str(ck),
            shard_backend="process",
            workers=1,
            # Deeper than the trace so the read loop never blocks on a
            # dead consumer's full queue.
            queue_depth=64,
        )
        with ServerThread(config) as daemon:
            with open(trace) as fp:
                epochs = json.loads(fp.readline())["epochs"]
            sock = raw_handshake(daemon.address, trace, "victim", 2)
            wait_for_checkpoint(ck, min_epoch=1)
            proc = self._worker_proc(daemon, "victim")
            proc.kill()
            proc.join(10.0)
            # Deliver the rest: the dead shard surfaces as this one
            # session's ERROR internal, with resume coordinates -- the
            # daemon itself stays up.
            with open(trace) as fp:
                fp.readline()
                lines = [line.strip() for line in fp]
            for line in lines[2:epochs]:
                sock.sendall(encode_frame(FRAME_EPOCH, line.encode()))
            sock.sendall(encode_json_frame(
                FRAME_END, {"epochs_written": epochs}
            ))
            ftype, payload = read_frame_sync(sock)
            sock.close()
            assert ftype == FRAME_ERROR
            answer = json.loads(payload)
            assert answer["code"] == "internal"
            assert answer["token"]
            assert answer["resume_epoch"] >= 1

            # The shard respawns a fresh worker; the stream resumes
            # from its checkpoint and the report is offline-identical.
            client = StreamClient(
                daemon.address, str(trace), "victim",
                policy=FAST, retries=2,
            )
            served = client.push()
            assert client.last_ack["resume_epoch"] >= 1
            assert served == offline_report(trace, "victim")

    def test_worker_respawns_between_streams(self, tmp_path):
        trace = tmp_path / "t.stream.jsonl"
        write_trace(trace, events=200, seed=4)
        config = ServeConfig(
            unix_path=str(tmp_path / "s.sock"),
            shard_backend="process",
            workers=1,
        )
        with ServerThread(config) as daemon:
            first = push_trace(daemon.address, str(trace), "a")
            proc = self._worker_proc(daemon, "a")
            proc.kill()
            proc.join(10.0)
            # A dead idle worker is respawned transparently on the next
            # stream's open -- no error surfaces anywhere.
            second = push_trace(daemon.address, str(trace), "a")
            assert json.dumps(second) == json.dumps(first)
