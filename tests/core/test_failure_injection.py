"""Failure-injection tests: the engine and analyses under misuse.

Production libraries fail loudly and precisely; these tests pin the
error behaviour down so misuse is a diagnosis, not a silent wrong
answer.
"""

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyAnalysis, ButterflyEngine
from repro.errors import AnalysisError
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


def partition(threads=2, per_thread=6, h=2):
    prog = TraceProgram.from_lists(
        *[[Instr.nop() for _ in range(per_thread)] for _ in range(threads)]
    )
    return partition_fixed(prog, h)


class ExplodingAnalysis(ButterflyAnalysis):
    """Raises in a configurable phase."""

    def __init__(self, explode_in):
        self.explode_in = explode_in

    def _maybe(self, phase):
        if phase == self.explode_in:
            raise RuntimeError(f"injected failure in {phase}")

    def first_pass(self, block):
        self._maybe("first")
        return None

    def meet(self, butterfly, wing_summaries):
        self._maybe("meet")
        return None

    def second_pass(self, butterfly, side_in):
        self._maybe("second")

    def epoch_update(self, lid, summaries):
        self._maybe("epoch")


class TestAnalysisExceptionsPropagate:
    @pytest.mark.parametrize("phase", ["first", "meet", "second", "epoch"])
    def test_exception_is_not_swallowed(self, phase):
        engine = ButterflyEngine(ExplodingAnalysis(phase))
        with pytest.raises(RuntimeError, match=phase):
            engine.run(partition())


class TestEngineMisuse:
    def test_cannot_reuse_engine_across_partitions(self):
        guard = ButterflyAddrCheck()
        engine = ButterflyEngine(guard)
        engine.run(partition())
        with pytest.raises(AnalysisError):
            engine.run(partition())

    def test_feed_after_finish_rejected(self):
        engine = ButterflyEngine(ButterflyAddrCheck())
        part = partition()
        engine.attach(part)
        for lid in range(part.num_epochs):
            engine.feed_epoch(lid)
        engine.finish()
        with pytest.raises(AnalysisError):
            engine.feed_epoch(0)

    def test_skipping_an_epoch_rejected(self):
        engine = ButterflyEngine(ButterflyAddrCheck())
        engine.attach(partition())
        engine.feed_epoch(0)
        with pytest.raises(AnalysisError):
            engine.feed_epoch(2)


class TestGuardReuse:
    def test_guard_cannot_be_run_twice(self):
        # A lifeguard's SOS history is single-use; re-running must fail
        # loudly rather than corrupt state.
        guard = ButterflyAddrCheck()
        ButterflyEngine(guard).run(partition())
        with pytest.raises(AnalysisError):
            ButterflyEngine(guard).run(partition())


class TestEngineMemoryDiscipline:
    def test_stale_summaries_evicted(self):
        guard = ButterflyAddrCheck()
        engine = ButterflyEngine(guard)
        prog = TraceProgram.from_lists([Instr.write(1)] * 40)
        engine.run(partition_fixed(prog, 2))
        # The engine retains at most the sliding window of summaries.
        assert len(engine._summaries) <= 3

    def test_lifeguard_evicts_its_own_summaries(self):
        guard = ButterflyAddrCheck()
        prog = TraceProgram.from_lists([Instr.write(1)] * 40, [Instr.read(1)] * 40)
        ButterflyEngine(guard).run(partition_fixed(prog, 2))
        assert len(guard._summaries) <= 3 * 2
