"""The bounded-memory streaming pipeline: EpochSource, eviction, and
the feed_blocks contract."""

import random

import pytest

from repro.core.epoch import (
    partition_auto,
    partition_fixed,
    partition_from_boundaries,
)
from repro.core.framework import ButterflyAnalysis, ButterflyEngine
from repro.core.stream import EpochSource, PartitionSource
from repro.errors import AnalysisError
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.obs.recorder import Recorder, normalize_events
from repro.trace.events import Instr
from repro.trace.generator import simulated_alloc_program
from repro.trace.program import TraceProgram
from repro.trace.serialize import iter_load, save_stream_file


class RecordingAnalysis(ButterflyAnalysis):
    def __init__(self):
        self.calls = []

    def first_pass(self, block):
        self.calls.append(("first", block.block_id))
        return block.block_id

    def meet(self, butterfly, wing_summaries):
        return wing_summaries

    def second_pass(self, butterfly, side_in):
        self.calls.append(("second", butterfly.body_id))

    def epoch_update(self, lid, summaries):
        self.calls.append(("epoch", lid))


def nop_partition(threads=2, per_thread=6, h=2):
    prog = TraceProgram.from_lists(
        *[[Instr.nop() for _ in range(per_thread)] for _ in range(threads)]
    )
    return partition_fixed(prog, h)


def alloc_case(threads=4, events=2000, h=16, seed=3):
    prog = simulated_alloc_program(
        random.Random(seed),
        num_threads=threads,
        total_events=events,
        num_locations=64,
        inject_error_rate=0.02,
    )
    return prog, partition_auto(prog, h)


class TestPartitionSource:
    def test_shape_mirrors_partition(self):
        partition = nop_partition(threads=3, per_thread=8, h=2)
        source = PartitionSource(partition)
        assert source.num_threads == 3
        assert source.num_epochs == partition.num_epochs
        rows = list(source)
        assert len(rows) == partition.num_epochs
        assert all(len(row) == 3 for row in rows)
        assert rows[2][1].block_id == (2, 1)

    def test_seek_starts_mid_stream(self):
        source = PartitionSource(nop_partition(per_thread=10, h=2))
        rows = list(source.epochs(start=3))
        assert rows[0][0].lid == 3
        assert len(rows) == source.num_epochs - 3

    def test_partition_cache_is_evicted_behind_the_reader(self):
        partition = nop_partition(per_thread=40, h=2)
        for _ in PartitionSource(partition).epochs():
            pass
        # The cache never accumulates more than the live window.
        assert len(partition._blocks) <= 3 * partition.num_threads

    def test_preallocated_surfaces_program_set(self):
        prog, partition = alloc_case()
        assert PartitionSource(partition).preallocated == frozenset(
            prog.preallocated
        )


class TestRunSourceEquivalence:
    def test_same_callback_sequence_as_materialized_run(self):
        mat = RecordingAnalysis()
        ButterflyEngine(mat).run(nop_partition(threads=3, per_thread=12))
        streamed = RecordingAnalysis()
        ButterflyEngine(streamed).run_source(
            PartitionSource(nop_partition(threads=3, per_thread=12))
        )
        assert streamed.calls == mat.calls

    def test_same_errors_stats_and_event_log(self):
        prog, partition = alloc_case()
        mat_guard = ButterflyAddrCheck(
            initially_allocated=prog.preallocated
        )
        mat_rec = Recorder()
        mat_engine = ButterflyEngine(mat_guard, recorder=mat_rec)
        mat_stats = mat_engine.run(partition)

        _, partition2 = alloc_case()
        st_guard = ButterflyAddrCheck(
            initially_allocated=prog.preallocated
        )
        st_rec = Recorder()
        st_engine = ButterflyEngine(st_guard, recorder=st_rec)
        st_stats = st_engine.run_source(PartitionSource(partition2))

        assert st_stats == mat_stats
        assert [r.identity() for r in st_guard.errors] == [
            r.identity() for r in mat_guard.errors
        ]
        assert normalize_events(st_rec.events) == normalize_events(
            mat_rec.events
        )

    def test_unbounded_source_finishes_where_the_feed_stops(self):
        partition = nop_partition(threads=2, per_thread=12, h=2)

        class Unbounded(EpochSource):
            @property
            def num_threads(self):
                return partition.num_threads

            def epochs(self, start=0):
                for lid in range(start, partition.num_epochs):
                    yield partition.epoch_blocks(lid)

        source = Unbounded()
        assert source.num_epochs is None
        streamed = RecordingAnalysis()
        ButterflyEngine(streamed).run_source(source)
        mat = RecordingAnalysis()
        ButterflyEngine(mat).run(nop_partition(threads=2, per_thread=12, h=2))
        assert streamed.calls == mat.calls


class TestWindowBound:
    def test_500_epoch_trace_stays_within_three_epochs(self):
        # The regression the streaming PR exists for: peak resident
        # summaries on a long trace is the 3-epoch window, not O(run).
        threads = 4
        partition = nop_partition(threads=threads, per_thread=500, h=1)
        assert partition.num_epochs == 500
        engine = ButterflyEngine(RecordingAnalysis())
        engine.run_source(PartitionSource(partition))
        assert engine.window_high_water == 3 * threads
        # Post-run bookkeeping is the tail window, not 500 epochs.
        assert len(engine._summaries) <= 3 * threads
        assert engine._first_pass_errors == {}
        assert len(engine._window) <= 3 * threads

    def test_streamed_run_bounds_the_sos_history(self):
        # The analysis' per-epoch SOS history is the other unbounded
        # structure; a streamed run sheds it behind the second pass.
        prog, partition = alloc_case(events=4000)
        guard = ButterflyAddrCheck(initially_allocated=prog.preallocated)
        ButterflyEngine(guard).run_source(PartitionSource(partition))
        assert len(guard.sos._states) <= 2
        assert guard.sos.frontier == partition.num_epochs + 1
        # Materialized runs keep the full history for post-run
        # inspection -- and flag identical errors either way.
        _, partition2 = alloc_case(events=4000)
        mat = ButterflyAddrCheck(initially_allocated=prog.preallocated)
        ButterflyEngine(mat).run(partition2)
        assert len(mat.sos._states) == partition2.num_epochs + 2
        assert guard.sos.get(guard.sos.frontier) == mat.sos.get(
            mat.sos.frontier
        )
        assert [r.identity() for r in guard.errors] == [
            r.identity() for r in mat.errors
        ]

    def test_materialized_run_obeys_the_same_bound(self):
        partition = nop_partition(threads=2, per_thread=100, h=1)
        engine = ButterflyEngine(RecordingAnalysis())
        engine.run(partition)
        assert engine.window_high_water == 3 * 2

    def test_gauge_and_counter_exported(self):
        partition = nop_partition(threads=2, per_thread=20, h=2)
        rec = Recorder()
        engine = ButterflyEngine(RecordingAnalysis(), recorder=rec)
        engine.run_source(PartitionSource(partition))
        snap = rec.snapshot()
        assert snap["counters"]["stream.epochs_received"] == (
            partition.num_epochs
        )
        assert 0 < snap["gauges"]["engine.window_resident_blocks"] <= 6

    def test_counter_absent_on_materialized_runs(self):
        rec = Recorder()
        engine = ButterflyEngine(RecordingAnalysis(), recorder=rec)
        engine.run(nop_partition())
        assert "stream.epochs_received" not in rec.snapshot()["counters"]


class TestFeedBlocksContract:
    def feed_ready_engine(self, threads=2):
        partition = nop_partition(threads=threads, per_thread=8, h=2)
        engine = ButterflyEngine(RecordingAnalysis())
        engine.attach_source(PartitionSource(partition))
        return engine, partition

    def test_out_of_order_feed_is_rejected_and_non_poisoning(self):
        engine, partition = self.feed_ready_engine()
        engine.feed_blocks(0, partition.epoch_blocks(0))
        with pytest.raises(AnalysisError, match="must arrive in order"):
            engine.feed_blocks(2, partition.epoch_blocks(2))
        # A validation failure leaves the engine fully usable.
        engine.feed_blocks(1, partition.epoch_blocks(1))
        engine.feed_blocks(2, partition.epoch_blocks(2))
        engine.feed_blocks(3, partition.epoch_blocks(3))
        engine.finish()

    def test_wrong_row_width_rejected(self):
        engine, partition = self.feed_ready_engine()
        with pytest.raises(AnalysisError, match="one block per thread"):
            engine.feed_blocks(0, partition.epoch_blocks(0)[:1])
        engine.feed_blocks(0, partition.epoch_blocks(0))

    def test_mislabelled_block_rejected(self):
        engine, partition = self.feed_ready_engine()
        row = partition.epoch_blocks(1)
        with pytest.raises(AnalysisError, match="block"):
            engine.feed_blocks(0, row)
        engine.feed_blocks(0, partition.epoch_blocks(0))

    def test_mid_analysis_crash_poisons_until_reset(self):
        partition = nop_partition(threads=2, per_thread=8, h=2)

        class Exploding(RecordingAnalysis):
            def __init__(self):
                super().__init__()
                self.armed = False

            def first_pass(self, block):
                if self.armed:
                    raise RuntimeError("boom")
                return super().first_pass(block)

        analysis = Exploding()
        engine = ButterflyEngine(analysis)
        engine.attach_source(PartitionSource(partition))
        engine.feed_blocks(0, partition.epoch_blocks(0))
        analysis.armed = True
        with pytest.raises(RuntimeError, match="boom"):
            engine.feed_blocks(1, partition.epoch_blocks(1))
        # The engine refuses further work with a clear diagnosis ...
        with pytest.raises(AnalysisError, match="failed state"):
            engine.feed_blocks(1, partition.epoch_blocks(1))
        with pytest.raises(AnalysisError, match="failed state"):
            engine.finish()
        # ... and reset() + re-attach makes it fully usable again.
        analysis.armed = False
        engine.reset()
        engine.run_source(PartitionSource(partition))

    def test_rollback_undoes_the_partial_receive(self):
        partition = nop_partition(threads=2, per_thread=8, h=2)

        class Exploding(RecordingAnalysis):
            armed = False

            def first_pass(self, block):
                if self.armed and block.block_id[1] == 1:
                    raise RuntimeError("boom")
                return super().first_pass(block)

        analysis = Exploding()
        engine = ButterflyEngine(analysis)
        engine.attach_source(PartitionSource(partition))
        engine.feed_blocks(0, partition.epoch_blocks(0))
        before_summaries = dict(engine._summaries)
        before_window = dict(engine._window)
        analysis.armed = True
        with pytest.raises(RuntimeError):
            engine.feed_blocks(1, partition.epoch_blocks(1))
        assert engine._summaries == before_summaries
        assert engine._window == before_window
        assert engine._next_to_receive == 1

    def test_finish_before_known_length_raises(self):
        engine, partition = self.feed_ready_engine()
        engine.feed_blocks(0, partition.epoch_blocks(0))
        with pytest.raises(AnalysisError, match="before all epochs"):
            engine.finish()

    def test_double_attach_raises(self):
        engine, partition = self.feed_ready_engine()
        with pytest.raises(AnalysisError, match="already attached"):
            engine.attach_source(PartitionSource(partition))
        with pytest.raises(AnalysisError, match="already attached"):
            engine.attach(partition)


class TestVariablePartitions:
    """Irregular explicit cuts -- unequal block sizes, zero-length
    blocks mid-stream and at the tail -- flow through every ingestion
    path identically (the shape adaptive serve sessions produce)."""

    def case(self, seed=11):
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=3,
            total_events=300,
            num_locations=32,
            inject_error_rate=0.02,
        )
        boundaries = []
        for t in prog.threads:
            n = len(t)
            assert n >= 6  # the cuts below need room
            # Tiny first block, an empty block mid-stream, a fat middle,
            # and a zero-length tail.
            boundaries.append([1, 1, n // 3, n, n])
        return prog, boundaries

    def fingerprint(self, guard, stats):
        return (
            stats,
            [r.identity() for r in guard.errors],
        )

    def run_materialized(self, prog, boundaries):
        guard = ButterflyAddrCheck(initially_allocated=prog.preallocated)
        stats = ButterflyEngine(guard).run(
            partition_from_boundaries(prog, boundaries)
        )
        return self.fingerprint(guard, stats)

    def test_streamed_and_file_runs_match_materialized(self, tmp_path):
        prog, boundaries = self.case()
        reference = self.run_materialized(prog, boundaries)

        guard = ButterflyAddrCheck(initially_allocated=prog.preallocated)
        stats = ButterflyEngine(guard).run_source(
            PartitionSource(partition_from_boundaries(prog, boundaries))
        )
        assert self.fingerprint(guard, stats) == reference

        path = str(tmp_path / "irregular.stream.jsonl")
        save_stream_file(partition_from_boundaries(prog, boundaries), path)
        guard = ButterflyAddrCheck(initially_allocated=prog.preallocated)
        stats = ButterflyEngine(guard).run_source(iter_load(path))
        assert self.fingerprint(guard, stats) == reference

    def test_zero_length_blocks_still_count_as_epochs(self):
        prog, boundaries = self.case()
        partition = partition_from_boundaries(prog, boundaries)
        assert partition.num_epochs == 5
        assert len(partition.block(1, 0)) == 0  # mid-stream empty block
        assert len(partition.block(4, 0)) == 0  # zero-length tail
        guard = ButterflyAddrCheck(initially_allocated=prog.preallocated)
        stats = ButterflyEngine(guard).run(partition)
        assert stats.epochs_processed == 5
