"""Tests for the columnar event-block representation
(``repro.core.columnar``)."""

import os
import pickle
import random
import subprocess
import sys

import pytest

from repro.core.columnar import (
    HAVE_NUMPY,
    NO_DST,
    OP_CODES,
    OPS_BY_CODE,
    ColumnarBlock,
    ColumnBuilder,
    RowDecodeError,
)
from repro.core.epoch import Block
from repro.trace.events import Instr, Op
from repro.trace.generator import adversarial_instrs


def _sample_instrs():
    return [
        Instr.malloc(0, size=4),
        Instr.write(1),
        Instr.read(2),
        Instr.assign(3, 1, 2),
        Instr.assign(3, 1),
        Instr.taint(1),
        Instr.untaint(1),
        Instr.jump(3),
        Instr.nop(),
        Instr.free(0, size=4),
    ]


class TestOpCodes:
    def test_table_is_dense_and_stable(self):
        # Codes are a permutation of 0..n-1 (pickled blocks bake them in).
        assert sorted(OP_CODES.values()) == list(range(len(OP_CODES)))
        assert set(OP_CODES) == set(Op)

    def test_ops_by_code_inverts_table(self):
        for op, code in OP_CODES.items():
            assert OPS_BY_CODE[code] is op


class TestRoundTrip:
    def test_from_instrs_to_instrs_identity(self):
        instrs = _sample_instrs()
        cols = ColumnarBlock.from_instrs(instrs)
        assert len(cols) == len(instrs)
        assert list(cols.to_instrs()) == instrs

    def test_adversarial_round_trip(self):
        rng = random.Random(11)
        ops = (Op.WRITE, Op.READ, Op.MALLOC, Op.FREE, Op.ASSIGN,
               Op.TAINT, Op.UNTAINT, Op.JUMP, Op.NOP)
        instrs = adversarial_instrs(
            rng, 500, num_locations=32, ops=ops,
            straddle_stride=8, max_extent=5,
        )
        cols = ColumnarBlock.from_instrs(instrs)
        assert list(cols.to_instrs()) == instrs
        for i in (0, len(instrs) // 2, len(instrs) - 1):
            assert cols.instr(i) == instrs[i]

    def test_rows_round_trip(self):
        instrs = _sample_instrs()
        cols = ColumnarBlock.from_rows(ColumnarBlock.from_instrs(instrs).to_rows())
        assert list(cols.to_instrs()) == instrs

    def test_empty_block(self):
        cols = ColumnarBlock.from_instrs([])
        assert len(cols) == 0
        assert cols.to_instrs() == ()
        assert cols.to_rows() == []

    def test_builder_matches_from_instrs(self):
        instrs = _sample_instrs()
        b = ColumnBuilder()
        for ins in instrs:
            b.emit(
                OP_CODES[ins.op],
                dst=NO_DST if ins.dst is None else ins.dst,
                srcs=ins.srcs,
                size=ins.size,
            )
        assert len(b) == len(instrs)
        assert b.freeze() == ColumnarBlock.from_instrs(instrs)


class TestRowValidation:
    def test_bad_shape(self):
        with pytest.raises(RowDecodeError):
            ColumnarBlock.from_rows([["write", 1]])

    def test_unknown_op(self):
        with pytest.raises(RowDecodeError):
            ColumnarBlock.from_rows([["teleport", 1, [], 1]])

    def test_bad_size(self):
        with pytest.raises(RowDecodeError):
            ColumnarBlock.from_rows([[Op.MALLOC.value, 1, [], 0]])

    def test_missing_destination(self):
        with pytest.raises(RowDecodeError):
            ColumnarBlock.from_rows([[Op.WRITE.value, None, [], 1]])

    def test_bad_sources(self):
        with pytest.raises(RowDecodeError):
            ColumnarBlock.from_rows([[Op.READ.value, None, ["x"], 1]])

    def test_read_needs_exactly_one_source(self):
        with pytest.raises(RowDecodeError):
            ColumnarBlock.from_rows([[Op.READ.value, None, [1, 2], 1]])

    def test_assign_takes_at_most_two_sources(self):
        with pytest.raises(RowDecodeError):
            ColumnarBlock.from_rows([[Op.ASSIGN.value, 0, [1, 2, 3], 1]])

    def test_error_carries_row(self):
        row = [Op.READ.value, None, [], 1]
        with pytest.raises(RowDecodeError) as exc:
            ColumnarBlock.from_rows([row])
        assert exc.value.row == row


class TestPickling:
    def test_round_trips_and_compares_equal(self):
        cols = ColumnarBlock.from_instrs(_sample_instrs())
        clone = pickle.loads(pickle.dumps(cols))
        assert clone == cols
        assert hash(clone) == hash(cols)
        assert list(clone.to_instrs()) == list(cols.to_instrs())

    def test_payload_contains_no_event_objects(self):
        payload = pickle.dumps(ColumnarBlock.from_instrs(_sample_instrs()))
        assert b"Instr" not in payload
        assert b"repro.trace.events" not in payload

    def test_wire_form_readable_without_numpy(self):
        """A block pickled with the current backend must load under
        ``REPRO_NO_NUMPY=1`` (and vice versa): the wire form is raw
        little-endian bytes, not backend objects."""
        payload = pickle.dumps(ColumnarBlock.from_instrs(_sample_instrs()))
        code = (
            "import pickle, sys\n"
            "from repro.core.columnar import HAVE_NUMPY\n"
            "assert not HAVE_NUMPY\n"
            "cols = pickle.loads(sys.stdin.buffer.read())\n"
            "rows = cols.to_rows()\n"
            "assert len(rows) == cols.length\n"
            "print(len(rows))\n"
        )
        env = dict(os.environ, REPRO_NO_NUMPY="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            input=payload, capture_output=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert proc.returncode == 0, proc.stderr.decode()
        assert proc.stdout.strip() == b"10"


class TestBlockIntegration:
    def test_block_requires_some_representation(self):
        with pytest.raises(TypeError):
            Block(0, 0, 0)

    def test_columnar_block_materializes_lazily(self):
        cols = ColumnarBlock.from_instrs(_sample_instrs())
        block = Block(0, 1, 0, columns=cols)
        assert block.has_columns
        assert len(block) == len(cols)
        assert list(block.instrs) == _sample_instrs()

    def test_object_block_columnarizes_lazily(self):
        block = Block(0, 1, 0, _sample_instrs())
        assert not block.has_columns
        assert block.columns == ColumnarBlock.from_instrs(_sample_instrs())

    def test_block_pickle_ships_columns_not_instrs(self):
        block = Block(2, 3, 20, _sample_instrs())
        payload = pickle.dumps(block)
        assert b"Instr" not in payload
        assert b"repro.trace.events" not in payload
        clone = pickle.loads(payload)
        assert (clone.lid, clone.tid, clone.start) == (2, 3, 20)
        assert list(clone.instrs) == _sample_instrs()
        assert clone == block

    def test_backend_flag_matches_environment(self):
        # In-process sanity: the flag reflects REPRO_NO_NUMPY.
        if os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0"):
            assert not HAVE_NUMPY
