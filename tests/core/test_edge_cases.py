"""Edge cases across the core: degenerate traces and partitions."""

import pytest

from repro.core.epoch import (
    partition_by_global_order,
    partition_fixed,
)
from repro.core.framework import ButterflyEngine
from repro.core.reaching_defs import ReachingDefinitions
from repro.core.reaching_exprs import ReachingExpressions
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.trace.events import Instr
from repro.trace.program import ThreadTrace, TraceProgram

ALL_ANALYSES = [
    ButterflyAddrCheck,
    ButterflyTaintCheck,
    ButterflyRaceCheck,
    ReachingDefinitions,
    ReachingExpressions,
]


@pytest.mark.parametrize("factory", ALL_ANALYSES)
class TestDegenerateInputs:
    def test_empty_single_thread(self, factory):
        prog = TraceProgram([ThreadTrace([])])
        analysis = factory()
        ButterflyEngine(analysis).run(partition_fixed(prog, 4))

    def test_single_instruction(self, factory):
        prog = TraceProgram.from_lists([Instr.nop()])
        analysis = factory()
        ButterflyEngine(analysis).run(partition_fixed(prog, 1))

    def test_one_thread_empty_one_not(self, factory):
        prog = TraceProgram(
            [ThreadTrace([Instr.nop()] * 5), ThreadTrace([])]
        )
        analysis = factory()
        ButterflyEngine(analysis).run(partition_fixed(prog, 2))

    def test_epoch_larger_than_trace(self, factory):
        prog = TraceProgram.from_lists([Instr.nop()] * 3, [Instr.nop()] * 3)
        analysis = factory()
        ButterflyEngine(analysis).run(partition_fixed(prog, 1000))

    def test_many_tiny_epochs(self, factory):
        prog = TraceProgram.from_lists([Instr.nop()] * 12)
        analysis = factory()
        ButterflyEngine(analysis).run(partition_fixed(prog, 1))


class TestGlobalOrderEdges:
    def test_single_event_program(self):
        prog = TraceProgram.from_lists([Instr.nop()])
        prog.true_order = [(0, 0)]
        part = partition_by_global_order(prog, 4)
        assert part.num_epochs == 1

    def test_heartbeat_exactly_at_end(self):
        prog = TraceProgram.from_lists([Instr.nop()] * 4)
        prog.true_order = [(0, i) for i in range(4)]
        part = partition_by_global_order(prog, 4)
        # One full epoch plus the closing (empty) one.
        sizes = [len(part.block(l, 0)) for l in range(part.num_epochs)]
        assert sum(sizes) == 4

    def test_thread_that_never_runs_early(self):
        # Thread 1's events all arrive after thread 0 finished.
        prog = TraceProgram.from_lists(
            [Instr.nop()] * 6, [Instr.nop()] * 2
        )
        prog.true_order = [(0, i) for i in range(6)] + [(1, 0), (1, 1)]
        part = partition_by_global_order(prog, 2)
        # Early epochs have empty thread-1 blocks.
        assert len(part.block(0, 1)) == 0
        recovered = sum(len(part.block(l, 1)) for l in range(part.num_epochs))
        assert recovered == 2


class TestMallocExtentEdges:
    def test_extent_spanning_epoch_boundary_events(self):
        # A malloc's extent is one event; accesses to each covered
        # location are checked individually.
        prog = TraceProgram.from_lists(
            [Instr.malloc(0, 8), Instr.read(0), Instr.read(7), Instr.read(8)]
        )
        guard = ButterflyAddrCheck()
        ButterflyEngine(guard).run(partition_fixed(prog, 2))
        assert {r.location for r in guard.errors} == {8}

    def test_partial_free(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0, 4), Instr.free(0, 2), Instr.read(1),
             Instr.read(2)]
        )
        guard = ButterflyAddrCheck()
        ButterflyEngine(guard).run(partition_fixed(prog, 4))
        assert {r.location for r in guard.errors} == {1}
