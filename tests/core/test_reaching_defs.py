"""Unit and oracle tests for dynamic parallel reaching definitions."""

import random

import pytest

from repro.core.dataflow import Definition
from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.core.ordering import all_valid_orderings, serialize_ordering
from repro.core.reaching_defs import ReachingDefinitions
from repro.trace.events import Instr, Op
from repro.trace.generator import random_program
from repro.trace.program import TraceProgram


def run_defs(program, h, **kwargs):
    analysis = ReachingDefinitions(**kwargs)
    ButterflyEngine(analysis).run(partition_fixed(program, h))
    return analysis


def sequential_reaching(instr_seq):
    """Oracle: last definition per variable after executing a sequence."""
    last = {}
    for iid, instr in instr_seq:
        if instr.op in (Op.WRITE, Op.ASSIGN, Op.TAINT, Op.UNTAINT):
            if instr.dst is not None:
                last[instr.dst] = Definition(instr.dst, iid)
    return set(last.values())


class TestBasics:
    def test_single_thread_matches_sequential(self):
        prog = TraceProgram.from_lists(
            [Instr.write(0), Instr.write(1), Instr.write(0)]
        )
        analysis = run_defs(prog, 1)
        # After all epochs, SOS for the epoch after the last+2 holds
        # exactly the downward-exposed defs.
        final = analysis.sos.get(analysis.sos.frontier)
        assert final == {
            Definition(0, (2, 0, 0)),
            Definition(1, (1, 0, 0)),
        }

    def test_cross_thread_defs_may_all_reach(self):
        # Both threads define x concurrently: both defs reach (exists
        # semantics -- either write may be last).
        prog = TraceProgram.from_lists([Instr.write(7)], [Instr.write(7)])
        analysis = run_defs(prog, 1)
        final = analysis.sos.get(analysis.sos.frontier)
        assert final == {
            Definition(7, (0, 0, 0)),
            Definition(7, (0, 1, 0)),
        }

    def test_strictly_later_write_kills(self):
        # Thread 0 defines x in epoch 0; thread 1 redefines it two
        # epochs later -- the old def cannot survive.
        prog = TraceProgram.from_lists(
            [Instr.write(5), Instr.nop(), Instr.nop()],
            [Instr.nop(), Instr.nop(), Instr.write(5)],
        )
        analysis = run_defs(prog, 1)
        final = analysis.sos.get(analysis.sos.frontier)
        assert Definition(5, (0, 0, 0)) not in final
        assert Definition(5, (2, 1, 0)) in final

    def test_gen_side_in_union_of_wings(self):
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.nop()],
            [Instr.write(3), Instr.write(4)],
        )
        analysis = run_defs(prog, 1)
        # Body (0,0) sees thread 1's defs from epochs 0..1 in its wings.
        side = analysis.side_in[(0, 0)]
        assert Definition(3, (0, 1, 0)) in side
        assert Definition(4, (1, 1, 0)) in side

    def test_block_in_includes_lsos_and_side(self):
        prog = TraceProgram.from_lists(
            [Instr.write(1), Instr.nop(), Instr.read(1)],
            [Instr.write(2), Instr.nop(), Instr.nop()],
        )
        analysis = run_defs(prog, 1)
        in_set = analysis.block_in[(2, 0)]
        assert Definition(1, (0, 0, 0)) in in_set  # via SOS/LSOS

    def test_instruction_hook_fires(self):
        seen = []
        prog = TraceProgram.from_lists([Instr.write(0), Instr.read(0)])
        analysis = ReachingDefinitions(
            on_instruction=lambda iid, instr, ins: seen.append((iid, len(ins)))
        )
        ButterflyEngine(analysis).run(partition_fixed(prog, 1))
        assert len(seen) == 2


class TestLemma51:
    """Lemma 5.1: GEN_l membership has an ordering witness; KILL_l
    membership means killed under every valid ordering."""

    @pytest.mark.parametrize("seed", range(12))
    def test_sos_invariant_against_oracle(self, seed):
        rng = random.Random(seed)
        prog = random_program(
            rng, num_threads=2, length=3, num_locations=3,
            ops=(Op.WRITE, Op.NOP, Op.READ),
        )
        h = 1
        part = partition_fixed(prog, h)
        analysis = run_defs(prog, h)

        # Oracle: a def is in SOS_{l} iff some valid ordering of epochs
        # [0, l-2] ends with it reaching (Lemma 5.2's invariant).
        for lid in range(2, part.num_epochs + 2):
            upto = lid - 2
            reachable = set()
            for order in all_valid_orderings(part, up_to_epoch=upto):
                seq = [(iid, part.instr(iid)) for iid in order]
                reachable |= sequential_reaching(seq)
            sos = analysis.sos.get(lid)
            # Soundness (no false negatives): every truly reachable def
            # is preserved in the SOS.
            assert reachable <= sos, (
                f"epoch {lid}: missing {reachable - sos}"
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_precision_not_absurd(self, seed):
        # The SOS may over-approximate, but only with defs that exist.
        rng = random.Random(seed + 100)
        prog = random_program(
            rng, num_threads=2, length=3, num_locations=2,
            ops=(Op.WRITE, Op.NOP),
        )
        analysis = run_defs(prog, 1)
        all_defs = set()
        part = partition_fixed(prog, 1)
        for block in part.iter_blocks():
            for iid, instr in block.iter_ids():
                if instr.dst is not None:
                    all_defs.add(Definition(instr.dst, iid))
        assert analysis.sos.get(analysis.sos.frontier) <= all_defs


class TestLSOSResurrection:
    def test_head_kill_of_adjacent_sibling_def_does_not_remove(self):
        # Thread 1 defines x in epoch 0 (lands in SOS_2).  Thread 0's
        # head (epoch 1) redefines x.  Because epoch 0 (other thread)
        # and epoch 1 are adjacent, the head's write may precede the
        # sibling's -- the sibling def must stay in LSOS_{2,0}.
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.write(9), Instr.read(9)],
            [Instr.write(9), Instr.nop(), Instr.nop()],
        )
        analysis = run_defs(prog, 1)
        lsos = analysis.block_lsos[(2, 0)]
        assert Definition(9, (0, 1, 0)) in lsos
        assert Definition(9, (1, 0, 0)) in lsos

    def test_head_kill_of_distant_def_removes(self):
        # Sibling defined x in epoch 0; head is epoch 2 -- strictly
        # after -- so the head's redefinition kills it in LSOS_{3,0}.
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.nop(), Instr.write(9), Instr.read(9)],
            [Instr.write(9), Instr.nop(), Instr.nop(), Instr.nop()],
        )
        analysis = run_defs(prog, 1)
        lsos = analysis.block_lsos[(3, 0)]
        assert Definition(9, (0, 1, 0)) not in lsos
        assert Definition(9, (2, 0, 0)) in lsos
