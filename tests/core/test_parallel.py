"""Unit tests for the execution backends and engine/backend wiring."""

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyAnalysis, ButterflyEngine
from repro.core.parallel import (
    BACKEND_CHOICES,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    get_backend,
)
from repro.errors import AnalysisError
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


class TestGetBackend:
    def test_names_resolve(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("threads"), ThreadPoolBackend)
        assert isinstance(get_backend("processes"), ProcessPoolBackend)

    def test_none_is_serial(self):
        assert isinstance(get_backend(None), SerialBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert get_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(AnalysisError, match="unknown execution backend"):
            get_backend("gpu")

    def test_choices_cover_all_backends(self):
        for name in BACKEND_CHOICES:
            backend = get_backend(name)
            assert backend.name == name
            backend.close()


class TestCapabilities:
    def test_serial(self):
        backend = SerialBackend()
        assert not backend.concurrent
        assert backend.shares_memory

    def test_threads(self):
        backend = ThreadPoolBackend()
        assert backend.concurrent
        assert backend.shares_memory

    def test_processes(self):
        backend = ProcessPoolBackend()
        assert backend.concurrent
        assert not backend.shares_memory


class TestWorkerCountValidation:
    @pytest.mark.parametrize(
        "backend_cls", [ThreadPoolBackend, ProcessPoolBackend]
    )
    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_non_positive_max_workers_rejected(self, backend_cls, bad):
        # Regression: `max_workers or _default_workers()` silently
        # turned an explicit 0 into the CPU-count default.
        with pytest.raises(ValueError, match="max_workers must be >= 1"):
            backend_cls(max_workers=bad)

    @pytest.mark.parametrize(
        "backend_cls", [ThreadPoolBackend, ProcessPoolBackend]
    )
    def test_omitted_still_defaults(self, backend_cls):
        assert backend_cls().max_workers >= 1
        assert backend_cls(max_workers=1).max_workers == 1


class TestMapOrdered:
    @pytest.mark.parametrize("name", BACKEND_CHOICES)
    def test_preserves_item_order(self, name):
        items = [(i,) for i in range(20)]
        with get_backend(name, max_workers=2) as backend:
            assert backend.map_ordered(_square, items) == [
                i * i for i in range(20)
            ]

    @pytest.mark.parametrize("name", BACKEND_CHOICES)
    def test_empty_batch(self, name):
        with get_backend(name, max_workers=2) as backend:
            assert backend.map_ordered(_square, []) == []

    def test_close_idempotent(self):
        backend = ThreadPoolBackend(max_workers=1)
        backend.map_ordered(_square, [(3,)])
        backend.close()
        backend.close()
        # A closed pool lazily re-creates its executor on next use.
        assert backend.map_ordered(_square, [(4,)]) == [16]
        backend.close()


class LegacyAnalysis(ButterflyAnalysis):
    """Overrides the whole-pass methods directly (pre-split style)."""

    def __init__(self):
        self.order = []

    def first_pass(self, block):
        self.order.append(("first", block.block_id))
        return block.block_id

    def meet(self, butterfly, wing_summaries):
        return tuple(sorted(wing_summaries))

    def second_pass(self, butterfly, side_in):
        self.order.append(("second", butterfly.body_id, side_in))

    def epoch_update(self, lid, summaries):
        self.order.append(("epoch", lid))


def _partition(threads=3, per_thread=8, h=2):
    prog = TraceProgram.from_lists(
        *[[Instr.nop() for _ in range(per_thread)] for _ in range(threads)]
    )
    return partition_fixed(prog, h)


class TestEngineBackendWiring:
    @pytest.mark.parametrize("name", BACKEND_CHOICES)
    def test_legacy_analysis_runs_on_any_backend(self, name):
        """Analyses without the scan/commit split stay on the serial
        path and behave identically on every backend."""
        baseline = LegacyAnalysis()
        ref = ButterflyEngine(baseline).run(_partition())
        analysis = LegacyAnalysis()
        with ButterflyEngine(analysis, backend=name) as engine:
            stats = engine.run(_partition())
        assert stats == ref
        assert analysis.order == baseline.order

    def test_engine_owns_named_backend(self):
        engine = ButterflyEngine(LegacyAnalysis(), backend="threads")
        assert engine._owns_backend
        engine.close()
        assert engine.backend._executor is None

    def test_engine_does_not_own_passed_instance(self):
        backend = ThreadPoolBackend(max_workers=1)
        try:
            backend.map_ordered(_square, [(2,)])  # spin up the pool
            with ButterflyEngine(LegacyAnalysis(), backend=backend) as engine:
                engine.run(_partition())
            # close() on exit must leave the caller's pool running.
            assert backend._executor is not None
            assert backend.map_ordered(_square, [(5,)]) == [25]
        finally:
            backend.close()
