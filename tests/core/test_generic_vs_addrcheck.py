"""Differential test: the declarative framework vs. the hand-written
AddrCheck.

A forall-semantics generic lifeguard with allocation as GEN and
deallocation as KILL must reach the same first-pass conclusions as the
specialized :class:`ButterflyAddrCheck` (whose first-pass check is LSOS
membership) -- the isolation check and the idempotent filter are
AddrCheck extras, so the comparison is on access-level verdicts.
"""

import random

import pytest

from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.core.generic import LifeguardSpec
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.reports import ErrorKind, ErrorReport
from repro.trace.events import Op
from repro.trace.generator import simulated_alloc_program


def allocation_spec(partition):
    """AddrCheck's access check, spelled declaratively."""

    def gen_of(instr, iid):
        return instr.extent if instr.op is Op.MALLOC else ()

    def kill_vars_of(instr):
        return instr.extent if instr.op is Op.FREE else ()

    def check(iid, instr, in_set):
        for loc in instr.accessed:
            if loc not in in_set:
                yield ErrorReport(
                    ErrorKind.ACCESS_UNALLOCATED,
                    loc,
                    ref=partition.global_ref_of(iid),
                )

    return LifeguardSpec(
        name="generic-addrcheck",
        semantics="forall",
        gen_of=gen_of,
        kill_vars_of=kill_vars_of,
        element_vars=lambda loc: (loc,),
        check=check,
    )


@pytest.mark.parametrize("seed", range(15))
def test_generic_matches_specialized_access_flags(seed):
    prog = simulated_alloc_program(
        random.Random(seed), num_threads=3, total_events=120,
        num_locations=10, inject_error_rate=0.1,
    )
    part_a = partition_by_global_order(prog, 10)
    specialized = ButterflyAddrCheck(use_idempotent_filter=False)
    ButterflyEngine(specialized).run(part_a)
    specialized_access_flags = {
        (r.ref, r.location)
        for r in specialized.errors
        if r.kind is ErrorKind.ACCESS_UNALLOCATED
    }

    part_b = partition_by_global_order(prog, 10)
    spec = allocation_spec(part_b)
    generic = spec.build()
    ButterflyEngine(generic).run(part_b)
    generic_flags = {(r.ref, r.location) for r in generic.errors}

    # The generic IN is LSOS - KILL-SIDE-IN; the specialized first pass
    # checks the LSOS alone and leaves wing kills to the isolation
    # check, so the generic analysis may flag a superset of accesses.
    assert specialized_access_flags <= generic_flags
    # ...and everything extra must involve a wing-killed location --
    # i.e. the specialized run still flags the location somehow.
    specialized_locs = {r.location for r in specialized.errors}
    for _ref, loc in generic_flags - specialized_access_flags:
        assert loc in specialized_locs
