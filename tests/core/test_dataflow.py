"""Unit tests for GEN/KILL primitives and block summaries."""

from repro.core.dataflow import (
    BlockFacts,
    Definition,
    DefinitionDomain,
    Expression,
    ExpressionDomain,
    summarize_block,
    union_side_out_gen,
    union_side_out_kill,
)
from repro.core.epoch import Block
from repro.trace.events import Instr


def block(instrs, lid=0, tid=0):
    return Block(lid=lid, tid=tid, start=0, instrs=tuple(instrs))


class TestDefinitionDomain:
    domain = DefinitionDomain()

    def test_write_defines(self):
        facts = summarize_block(block([Instr.write(5)]), self.domain)
        assert facts.gen == {Definition(5, (0, 0, 0))}
        assert facts.killed_vars == {5}

    def test_redefinition_shadows(self):
        facts = summarize_block(
            block([Instr.write(5), Instr.write(5)]), self.domain
        )
        # Only the last definition is downward-exposed.
        assert facts.gen == {Definition(5, (0, 0, 1))}
        # But both appear in GEN-SIDE-OUT.
        assert facts.all_gen == {
            Definition(5, (0, 0, 0)),
            Definition(5, (0, 0, 1)),
        }

    def test_kill_of_foreign_definition(self):
        facts = summarize_block(block([Instr.write(5)]), self.domain)
        foreign = Definition(5, (9, 9, 9))
        assert facts.kills(foreign, self.domain)
        other_var = Definition(6, (9, 9, 9))
        assert not facts.kills(other_var, self.domain)

    def test_own_exposed_def_not_killed(self):
        facts = summarize_block(block([Instr.write(5)]), self.domain)
        own = Definition(5, (0, 0, 0))
        assert not facts.kills(own, self.domain)
        assert facts.gens(own)

    def test_shadowed_def_is_killed(self):
        facts = summarize_block(
            block([Instr.write(5), Instr.write(5)]), self.domain
        )
        first = Definition(5, (0, 0, 0))
        assert facts.kills(first, self.domain)

    def test_reads_define_nothing(self):
        facts = summarize_block(block([Instr.read(5)]), self.domain)
        assert not facts.gen and not facts.killed_vars


class TestExpressionDomain:
    domain = ExpressionDomain()

    def test_assign_generates_expression(self):
        facts = summarize_block(block([Instr.assign(0, 1, 2)]), self.domain)
        assert facts.gen == {Expression.of(1, 2)}

    def test_operand_order_canonical(self):
        assert Expression.of(2, 1) == Expression.of(1, 2)

    def test_tag_distinguishes_operators(self):
        assert Expression.of(1, 2, tag="add") != Expression.of(1, 2, tag="sub")

    def test_writing_operand_kills_expression(self):
        facts = summarize_block(
            block([Instr.assign(0, 1, 2), Instr.write(1)]), self.domain
        )
        assert facts.gen == set()
        assert facts.kills(Expression.of(1, 2), self.domain)

    def test_recompute_after_kill_is_exposed(self):
        facts = summarize_block(
            block(
                [
                    Instr.assign(0, 1, 2),
                    Instr.write(1),
                    Instr.assign(3, 1, 2),
                ]
            ),
            self.domain,
        )
        assert Expression.of(1, 2) in facts.gen
        assert not facts.kills(Expression.of(1, 2), self.domain)
        # Side-kill is a union over instructions: still side-killed.
        assert facts.side_kills(Expression.of(1, 2), self.domain)

    def test_foreign_expression_killed_by_operand_write(self):
        facts = summarize_block(block([Instr.write(7)]), self.domain)
        assert facts.kills(Expression.of(7, 8), self.domain)
        assert not facts.kills(Expression.of(8, 9), self.domain)


class TestSideOutMeets:
    def test_gen_side_in_is_union(self):
        d = DefinitionDomain()
        f1 = summarize_block(block([Instr.write(1)], tid=1), d)
        f2 = summarize_block(block([Instr.write(2)], tid=2), d)
        side = union_side_out_gen([f1, f2])
        assert side == f1.all_gen | f2.all_gen

    def test_kill_side_in_is_union_of_vars(self):
        d = ExpressionDomain()
        f1 = summarize_block(block([Instr.write(1)], tid=1), d)
        f2 = summarize_block(block([Instr.write(2)], tid=2), d)
        assert union_side_out_kill([f1, f2]) == {1, 2}

    def test_empty_wings(self):
        assert union_side_out_gen([]) == set()
        assert union_side_out_kill([]) == set()
