"""Tests for multi-lifeguard composition."""

import pytest

from repro.core.composite import CompositeAnalysis
from repro.core.epoch import partition_by_global_order, partition_fixed
from repro.core.framework import ButterflyEngine
from repro.errors import AnalysisError
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.trace.events import Instr
from repro.trace.program import TraceProgram
from repro.workloads.registry import get_benchmark


class TestComposite:
    def test_needs_children(self):
        with pytest.raises(AnalysisError):
            CompositeAnalysis([])

    def test_both_lifeguards_fire_in_one_run(self):
        # One trace with both a memory bug and a taint bug.
        prog = TraceProgram.from_lists(
            [Instr.read(5), Instr.taint(1), Instr.jump(1)],
        )
        # Location 1 is allocated (the taint bug is not a memory bug);
        # location 5 is the memory bug.
        addr = ButterflyAddrCheck(initially_allocated=[1])
        taint = ButterflyTaintCheck()
        engine = ButterflyEngine(CompositeAnalysis([addr, taint]))
        engine.run(partition_fixed(prog, 3))
        assert len(addr.errors) == 1
        assert len(taint.errors) == 1

    def test_matches_individual_runs(self):
        prog = get_benchmark("OCEAN").generate(3, 4000, seed=8)

        def ids(guard):
            return {r.identity() for r in guard.errors}

        # Composite run.
        addr_c = ButterflyAddrCheck(initially_allocated=prog.preallocated)
        race_c = ButterflyRaceCheck()
        ButterflyEngine(CompositeAnalysis([addr_c, race_c])).run(
            partition_by_global_order(prog, 1024)
        )
        # Individual runs.
        addr_i = ButterflyAddrCheck(initially_allocated=prog.preallocated)
        ButterflyEngine(addr_i).run(partition_by_global_order(prog, 1024))
        race_i = ButterflyRaceCheck()
        ButterflyEngine(race_i).run(partition_by_global_order(prog, 1024))

        assert ids(addr_c) == ids(addr_i)
        assert ids(race_c) == ids(race_i)

    def test_three_way_composition(self):
        prog = get_benchmark("BARNES").generate(2, 3000, seed=8)
        children = [
            ButterflyAddrCheck(initially_allocated=prog.preallocated),
            ButterflyTaintCheck(),
            ButterflyRaceCheck(),
        ]
        stats = ButterflyEngine(CompositeAnalysis(children)).run(
            partition_by_global_order(prog, 512)
        )
        assert stats.epochs_processed > 0
        # Each child kept its own SOS frontier.
        assert children[0].sos.frontier == children[1].sos.frontier
