"""Tests for the declarative lifeguard-writer API."""

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.core.generic import GenericLifeguard, LifeguardSpec
from repro.errors import AnalysisError
from repro.lifeguards.reports import ErrorKind, ErrorReport
from repro.trace.events import Instr, Op
from repro.trace.program import TraceProgram


def init_check_spec():
    """Definite-initialization lifeguard: reading a location that is
    not initialized on EVERY valid ordering is an error."""

    def gen_of(instr, iid):
        if instr.op is Op.WRITE and instr.dst is not None:
            return [instr.dst]
        return []

    def kill_vars_of(instr):
        if instr.op is Op.FREE:
            return instr.extent
        return []

    def check(iid, instr, in_set):
        if instr.op is Op.READ and instr.srcs[0] not in in_set:
            yield ErrorReport(
                ErrorKind.ACCESS_UNALLOCATED, instr.srcs[0], ref=iid,
                detail="read of possibly-uninitialized location",
            )

    return LifeguardSpec(
        name="init-check",
        semantics="forall",
        gen_of=gen_of,
        kill_vars_of=kill_vars_of,
        element_vars=lambda e: (e,),
        check=check,
    )


def run(spec, program, h):
    guard = spec.build()
    ButterflyEngine(guard).run(partition_fixed(program, h))
    return guard


class TestSpecValidation:
    def test_bad_semantics_rejected(self):
        with pytest.raises(AnalysisError):
            LifeguardSpec(
                name="x", semantics="maybe",
                gen_of=lambda i, d: [], kill_vars_of=lambda i: [],
                element_vars=lambda e: (),
            )

    def test_build_returns_fresh_instances(self):
        spec = init_check_spec()
        assert spec.build() is not spec.build()


class TestForallLifeguard:
    def test_initialized_read_is_clean(self):
        prog = TraceProgram.from_lists(
            [Instr.write(1), Instr.read(1)]
        )
        guard = run(init_check_spec(), prog, 2)
        assert len(guard.errors) == 0

    def test_uninitialized_read_flagged(self):
        prog = TraceProgram.from_lists([Instr.read(1)])
        guard = run(init_check_spec(), prog, 1)
        assert len(guard.errors) == 1

    def test_concurrent_free_defeats_guarantee(self):
        # Thread 0 initializes then reads; thread 1 may concurrently
        # free: the forall semantics cannot promise initialization.
        prog = TraceProgram.from_lists(
            [Instr.write(1), Instr.read(1)],
            [Instr.free(1), Instr.nop()],
        )
        guard = run(init_check_spec(), prog, 2)
        assert len(guard.errors) == 1

    def test_distant_init_survives_via_sos(self):
        prog = TraceProgram.from_lists(
            [Instr.write(1)] + [Instr.nop()] * 6 + [Instr.read(1)]
        )
        guard = run(init_check_spec(), prog, 2)
        assert len(guard.errors) == 0

    def test_sos_exposed(self):
        prog = TraceProgram.from_lists([Instr.write(1), Instr.nop(),
                                        Instr.nop(), Instr.nop()])
        guard = run(init_check_spec(), prog, 1)
        assert 1 in guard.sos.get(guard.sos.frontier)


class TestExistsLifeguard:
    def test_exists_semantics_unions_wings(self):
        # A "dirty data" tracker: writes make a location dirty; a jump
        # on possibly-dirty data is flagged (exists semantics).
        def check(iid, instr, in_set):
            if instr.op is Op.JUMP and any(
                getattr(e, "var", None) == instr.srcs[0] for e in in_set
            ):
                yield ErrorReport(
                    ErrorKind.TAINTED_JUMP, instr.srcs[0], ref=iid
                )

        from repro.core.dataflow import Definition

        spec = LifeguardSpec(
            name="dirty",
            semantics="exists",
            gen_of=lambda instr, iid: (
                [Definition(instr.dst, iid)]
                if instr.op is Op.WRITE else []
            ),
            kill_vars_of=lambda instr: (
                [instr.dst] if instr.op is Op.WRITE else []
            ),
            element_vars=lambda e: (e.var,),
            check=check,
        )
        # The dirty write is potentially concurrent with the jump.
        prog = TraceProgram.from_lists(
            [Instr.jump(5)],
            [Instr.write(5)],
        )
        guard = run(spec, prog, 1)
        assert len(guard.errors) == 1

        # Strictly-ordered jump before any write: clean.
        prog2 = TraceProgram.from_lists(
            [Instr.jump(5)] + [Instr.nop()] * 3,
            [Instr.nop()] * 3 + [Instr.write(5)],
        )
        guard2 = run(spec, prog2, 1)
        assert len(guard2.errors) == 0
