"""Adaptive epoch sizing: the SLO controller, block coalescing, the
AdaptiveEngine wrapper, and the offline tune sweep."""

import random

import pytest

from repro.core.columnar import HAVE_NUMPY, ColumnarBlock
from repro.core.epoch import Block, partition_auto, partition_from_boundaries
from repro.core.framework import ButterflyAnalysis, ButterflyEngine
from repro.core.stream import ShapeSource
from repro.core.tune import (
    AdaptiveEngine,
    EpochController,
    SloConfig,
    TunePoint,
    fit_line,
    fit_tradeoff,
    merge_block_run,
    tune_workload,
)
from repro.errors import AnalysisError, ReproError
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.trace.events import Instr
from repro.trace.generator import alloc_handoff_program

MS = 1_000_000  # observe() takes nanoseconds


class TestSloConfig:
    def test_defaults_are_valid(self):
        slo = SloConfig()
        assert slo.min_fold == 1
        assert slo.max_fold >= slo.min_fold

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_fold": 0},
            {"min_fold": 8, "max_fold": 4},
            {"target_fold_ms": 0.0},
            {"target_fold_ms": -5.0},
        ],
    )
    def test_invalid_configs_are_rejected(self, kwargs):
        with pytest.raises(ReproError):
            SloConfig(**kwargs)


def slo(**kw):
    base = dict(
        target_fold_ms=10.0, queue_high=3, queue_low=1, min_fold=1,
        max_fold=16,
    )
    base.update(kw)
    return SloConfig(**base)


class TestEpochController:
    def test_starts_at_min_fold(self):
        assert EpochController(slo(min_fold=2)).fold_factor == 2

    def test_deep_queue_doubles_up_to_max(self):
        c = EpochController(slo())
        for expected in (2, 4, 8, 16, 16):
            assert c.observe(queue_depth=5, fold_ns=1 * MS, rows=1) == expected

    def test_drained_queue_shrinks_additively(self):
        c = EpochController(slo())
        c.fold_factor = 4
        assert c.observe(queue_depth=0, fold_ns=1 * MS, rows=4) == 3
        assert c.observe(queue_depth=1, fold_ns=1 * MS, rows=3) == 2

    def test_mid_band_queue_holds_steady(self):
        c = EpochController(slo())
        c.fold_factor = 4
        assert c.observe(queue_depth=2, fold_ns=1 * MS, rows=4) == 4

    def test_slo_breach_halves_and_beats_a_deep_queue(self):
        c = EpochController(slo())
        c.fold_factor = 8
        # Queue says double, latency says halve: latency wins.
        assert c.observe(queue_depth=100, fold_ns=11 * MS, rows=8) == 4
        assert c.slo_breaches == 1

    def test_new_errors_shrink_before_queue_grows(self):
        c = EpochController(slo())
        c.fold_factor = 4
        assert (
            c.observe(queue_depth=5, fold_ns=1 * MS, rows=4, errors_delta=2)
            == 3
        )

    def test_error_bias_off_lets_the_burst_rule_win(self):
        c = EpochController(slo(error_bias=False))
        c.fold_factor = 4
        assert (
            c.observe(queue_depth=5, fold_ns=1 * MS, rows=4, errors_delta=2)
            == 8
        )

    def test_never_shrinks_below_min_fold(self):
        c = EpochController(slo(min_fold=2))
        assert c.observe(queue_depth=0, fold_ns=50 * MS, rows=2) == 2

    def test_replayed_observations_reproduce_decisions(self):
        stream = [(5, 1 * MS, 0), (5, 1 * MS, 0), (0, 12 * MS, 1),
                  (2, 1 * MS, 0), (0, 1 * MS, 0)]
        runs = []
        for _ in range(2):
            c = EpochController(slo())
            runs.append([
                c.observe(queue_depth=q, fold_ns=ns, rows=1, errors_delta=e)
                for q, ns, e in stream
            ])
        assert runs[0] == runs[1]


def object_block(lid, tid, start, n, base=0):
    return Block(
        lid, tid, start,
        instrs=tuple(Instr.write(base + k) for k in range(n)),
    )


class TestMergeBlockRun:
    def test_single_block_passes_through(self):
        blk = object_block(3, 0, 6, 4)
        assert merge_block_run(3, [blk]) is blk

    def test_single_block_is_relabelled_to_the_analysis_epoch(self):
        blk = object_block(7, 1, 14, 4)
        merged = merge_block_run(2, [blk])
        assert (merged.lid, merged.tid, merged.start) == (2, 1, 14)
        assert merged.instrs == blk.instrs

    def test_object_blocks_concatenate_in_order(self):
        a = object_block(0, 0, 0, 3, base=0)
        b = object_block(1, 0, 3, 2, base=10)
        merged = merge_block_run(0, [a, b])
        assert len(merged) == 5
        assert merged.instrs == a.instrs + b.instrs
        # start inherited from the first block: global refs unchanged.
        assert merged.start == 0
        assert [merged.global_ref(i) for i in range(5)] == (
            [a.global_ref(i) for i in range(3)]
            + [b.global_ref(i) for i in range(2)]
        )

    @pytest.mark.skipif(not HAVE_NUMPY, reason="columnar path needs numpy")
    def test_all_columnar_inputs_stay_columnar(self):
        a_instrs = tuple(Instr.write(k) for k in range(3))
        b_instrs = (Instr.malloc(9, 1), Instr.write(9))
        a = Block(0, 1, 0, columns=ColumnarBlock.from_instrs(a_instrs))
        b = Block(1, 1, 3, columns=ColumnarBlock.from_instrs(b_instrs))
        merged = merge_block_run(0, [a, b])
        assert merged.has_columns
        assert merged.instrs == a_instrs + b_instrs

    def test_mixed_representations_fall_back_to_objects(self):
        a = Block(
            0, 0, 0,
            columns=ColumnarBlock.from_instrs((Instr.write(1),)),
        )
        b = object_block(1, 0, 1, 2)
        merged = merge_block_run(0, [a, b])
        assert merged.instrs == a.instrs + b.instrs


def adaptive_pair(program, h, fold, backend="serial"):
    """An AdaptiveEngine with the fold factor pinned at ``fold``."""
    partition = partition_auto(program, h)
    guard = ButterflyAddrCheck(initially_allocated=program.preallocated)
    engine = ButterflyEngine(guard, backend=backend)
    engine.attach_source(
        ShapeSource(
            partition.num_threads,
            num_epochs=None,
            preallocated=program.preallocated,
        )
    )
    controller = EpochController(slo(min_fold=fold, max_fold=fold))
    return (
        AdaptiveEngine(engine, controller, partition.num_threads),
        guard,
        partition,
    )


def error_identities(guard):
    return [(r.kind, r.location, r.ref, r.block, r.detail)
            for r in guard.errors]


def feed_all(adaptive, partition):
    for lid in range(partition.num_epochs):
        adaptive.feed_blocks(lid, partition.epoch_blocks(lid))
    adaptive.finish()


class TestAdaptiveEngine:
    def program(self, seed=5, threads=3, events=96):
        return alloc_handoff_program(
            random.Random(seed),
            num_threads=threads,
            events_per_thread=events,
        )

    def test_folds_every_fold_factor_rows(self):
        prog = self.program()
        adaptive, _, partition = adaptive_pair(prog, 4, fold=3)
        try:
            feed_all(adaptive, partition)
        finally:
            adaptive.close()
        rows = partition.num_epochs
        expected_epochs = (rows + 2) // 3
        assert adaptive.rows_folded == rows
        assert adaptive.stats.epochs_processed == expected_epochs
        for tid, cuts in enumerate(adaptive.recorded_boundaries):
            assert len(cuts) == expected_epochs
            assert cuts[-1] == len(prog.threads[tid])
            assert all(a <= b for a, b in zip(cuts, cuts[1:]))

    def test_out_of_order_rows_are_rejected(self):
        prog = self.program()
        adaptive, _, partition = adaptive_pair(prog, 4, fold=3)
        try:
            adaptive.feed_blocks(0, partition.epoch_blocks(0))
            with pytest.raises(AnalysisError, match="must arrive in order"):
                adaptive.feed_blocks(2, partition.epoch_blocks(2))
        finally:
            adaptive.close()

    def test_finish_flushes_a_partial_fold(self):
        prog = self.program(events=40)
        adaptive, _, partition = adaptive_pair(prog, 8, fold=4)
        try:
            feed_all(adaptive, partition)
        finally:
            adaptive.close()
        rows = partition.num_epochs
        assert rows % 4 != 0  # the last fold really is a remainder
        assert adaptive.stats.epochs_processed == (rows + 3) // 4
        assert adaptive.rows_folded == rows

    def test_bit_identical_to_explicit_boundary_replay(self):
        prog = self.program()
        adaptive, guard, partition = adaptive_pair(prog, 4, fold=3)
        try:
            feed_all(adaptive, partition)
        finally:
            adaptive.close()
        boundaries = [list(c) for c in adaptive.recorded_boundaries]

        replay = partition_from_boundaries(prog, boundaries)
        replay_guard = ButterflyAddrCheck(
            initially_allocated=prog.preallocated
        )
        with ButterflyEngine(replay_guard) as engine:
            stats = engine.run(replay)
        assert error_identities(guard) == error_identities(replay_guard)
        assert stats.epochs_processed == adaptive.stats.epochs_processed

    def test_extra_state_round_trips(self):
        prog = self.program()
        adaptive, _, partition = adaptive_pair(prog, 4, fold=2)
        try:
            for lid in range(4):
                adaptive.feed_blocks(lid, partition.epoch_blocks(lid))
            extra = adaptive.extra_state()
        finally:
            adaptive.close()
        assert extra["rows_folded"] == 4

        other, _, _ = adaptive_pair(prog, 4, fold=2)
        try:
            other.restore_extra(extra)
            assert other.rows_folded == 4
            assert other.resume_position == 4
            assert other.recorded_boundaries == extra["boundaries"]
        finally:
            other.close()

    def test_failed_fold_rolls_back_bookkeeping(self):
        class Exploding(ButterflyAnalysis):
            def __init__(self):
                self.armed = False
                self.fed = 0

            def first_pass(self, block):
                if self.armed:
                    raise RuntimeError("boom")
                self.fed += 1
                return None

            def meet(self, butterfly, wing_summaries):
                return None

            def second_pass(self, butterfly, side_in):
                pass

            def epoch_update(self, lid, summaries):
                pass

        prog = self.program()
        partition = partition_auto(prog, 4)
        analysis = Exploding()
        engine = ButterflyEngine(analysis)
        engine.attach_source(
            ShapeSource(partition.num_threads, num_epochs=None)
        )
        adaptive = AdaptiveEngine(
            engine,
            EpochController(slo(min_fold=2, max_fold=2)),
            partition.num_threads,
        )
        adaptive.feed_blocks(0, partition.epoch_blocks(0))
        adaptive.feed_blocks(1, partition.epoch_blocks(1))
        committed_cuts = [list(c) for c in adaptive.recorded_boundaries]
        assert adaptive.rows_folded == 2

        analysis.armed = True
        adaptive.feed_blocks(2, partition.epoch_blocks(2))
        with pytest.raises(RuntimeError, match="boom"):
            adaptive.feed_blocks(3, partition.epoch_blocks(3))
        # The failed fold left no trace: progress, boundaries, and the
        # buffered rows all read as if the fold never started.
        assert adaptive.rows_folded == 2
        assert adaptive.resume_position == 2
        assert [list(c) for c in adaptive.recorded_boundaries] == (
            committed_cuts
        )
        assert len(adaptive._pending) == 2


class TestFitting:
    def test_fit_line_recovers_an_exact_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        slope, intercept = fit_line(xs, [2 * x + 1 for x in xs])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_fit_line_degenerate_inputs(self):
        assert fit_line([], []) == (0.0, 0.0)
        assert fit_line([4.0], [7.0]) == (0.0, 7.0)
        # Constant x: no slope to fit, intercept is the mean.
        slope, intercept = fit_line([2.0, 2.0], [1.0, 3.0])
        assert slope == 0.0
        assert intercept == pytest.approx(2.0)

    def point(self, h, fp_rate, mean_ms):
        return TunePoint(
            epoch_size=h, epochs=10, flagged=5, false_positives=3,
            fp_rate=fp_rate, mean_epoch_ms=mean_ms, max_epoch_ms=mean_ms,
            events_per_s=1000.0,
        )

    def test_fit_tradeoff_sorts_and_fits(self):
        points = [
            self.point(8, 0.3, 4.0),
            self.point(2, 0.1, 1.0),
            self.point(4, 0.2, 2.0),
        ]
        curve = fit_tradeoff(points)
        assert [p.epoch_size for p in curve.points] == [2, 4, 8]
        assert curve.fp_slope == pytest.approx(0.1)  # per log2(h) step
        assert curve.latency_slope > 0
        assert curve.fp_monotone
        record = curve.to_record()
        assert record["fit"]["fp_rate_vs_log2_h"]["slope"] == (
            pytest.approx(0.1)
        )
        assert record["fp_monotone_nondecreasing"] is True

    def test_fit_tradeoff_flags_non_monotone_fp(self):
        curve = fit_tradeoff(
            [self.point(2, 0.3, 1.0), self.point(4, 0.1, 2.0)]
        )
        assert not curve.fp_monotone


class TestTuneWorkload:
    def test_non_oracle_lifeguards_are_refused(self):
        prog = alloc_handoff_program(
            random.Random(1), num_threads=2, events_per_thread=24
        )
        with pytest.raises(ReproError, match="no sequential oracle"):
            tune_workload(prog, [2, 4], lifeguard="race")

    def test_handoff_sweep_has_rising_fp_curve(self):
        prog = alloc_handoff_program(
            random.Random(1), num_threads=4, events_per_thread=256
        )
        curve = tune_workload(prog, [2, 8, 32])
        assert [p.epoch_size for p in curve.points] == [2, 8, 32]
        assert all(p.epochs > 0 for p in curve.points)
        # The handoff workload is error-free sequentially, so every
        # flag is a false positive -- and FPs grow with the window.
        assert all(
            p.false_positives == p.flagged for p in curve.points
        )
        assert curve.fp_slope > 0
