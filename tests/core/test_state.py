"""Unit tests for the SOS container."""

import pytest

from repro.core.state import SOSHistory
from repro.errors import AnalysisError


class TestSOSHistory:
    def test_initial_states_empty(self):
        sos = SOSHistory()
        assert sos.get(0) == frozenset()
        assert sos.get(1) == frozenset()

    def test_negative_epoch_is_empty(self):
        assert SOSHistory().get(-1) == frozenset()

    def test_unpublished_state_raises(self):
        with pytest.raises(AnalysisError):
            SOSHistory().get(2)

    def test_advance_applies_update_rule(self):
        sos = SOSHistory()
        sos.advance(0, {"a", "b"}, lambda e: False)
        assert sos.get(2) == {"a", "b"}
        sos.advance(1, {"c"}, lambda e: e == "a")
        assert sos.get(3) == {"b", "c"}

    def test_advance_out_of_order_rejected(self):
        sos = SOSHistory()
        with pytest.raises(AnalysisError):
            sos.advance(1, set(), lambda e: False)

    def test_double_advance_rejected(self):
        sos = SOSHistory()
        sos.advance(0, set(), lambda e: False)
        with pytest.raises(AnalysisError):
            sos.advance(0, set(), lambda e: False)

    def test_gen_overrides_kill(self):
        # SOS_l = GEN U (SOS - KILL): regenerated elements survive.
        sos = SOSHistory()
        sos.advance(0, {"a"}, lambda e: False)
        sos.advance(1, {"a"}, lambda e: e == "a")
        assert "a" in sos.get(3)

    def test_frontier_tracks(self):
        sos = SOSHistory()
        assert sos.frontier == 1
        sos.advance(0, set(), lambda e: False)
        assert sos.frontier == 2

    def test_published_snapshot(self):
        sos = SOSHistory()
        sos.advance(0, {"x"}, lambda e: False)
        snap = sos.published()
        assert snap[2] == {"x"}
