"""Unit tests for the SOS container."""

import pytest

from repro.core.state import SOSHistory
from repro.errors import AnalysisError


class TestSOSHistory:
    def test_initial_states_empty(self):
        sos = SOSHistory()
        assert sos.get(0) == frozenset()
        assert sos.get(1) == frozenset()

    def test_negative_epoch_is_empty(self):
        assert SOSHistory().get(-1) == frozenset()

    def test_unpublished_state_raises(self):
        with pytest.raises(AnalysisError):
            SOSHistory().get(2)

    def test_advance_applies_update_rule(self):
        sos = SOSHistory()
        sos.advance(0, {"a", "b"}, lambda e: False)
        assert sos.get(2) == {"a", "b"}
        sos.advance(1, {"c"}, lambda e: e == "a")
        assert sos.get(3) == {"b", "c"}

    def test_advance_out_of_order_rejected(self):
        sos = SOSHistory()
        with pytest.raises(AnalysisError):
            sos.advance(1, set(), lambda e: False)

    def test_double_advance_rejected(self):
        sos = SOSHistory()
        sos.advance(0, set(), lambda e: False)
        with pytest.raises(AnalysisError):
            sos.advance(0, set(), lambda e: False)

    def test_gen_overrides_kill(self):
        # SOS_l = GEN U (SOS - KILL): regenerated elements survive.
        sos = SOSHistory()
        sos.advance(0, {"a"}, lambda e: False)
        sos.advance(1, {"a"}, lambda e: e == "a")
        assert "a" in sos.get(3)

    def test_frontier_tracks(self):
        sos = SOSHistory()
        assert sos.frontier == 1
        sos.advance(0, set(), lambda e: False)
        assert sos.frontier == 2

    def test_published_snapshot(self):
        sos = SOSHistory()
        sos.advance(0, {"x"}, lambda e: False)
        snap = sos.published()
        assert snap[2] == {"x"}


class TestEviction:
    def _advanced(self, n):
        sos = SOSHistory()
        for lid in range(n):
            sos.advance(lid, {lid}, lambda e: False)
        return sos

    def test_evict_drops_only_older_states(self):
        sos = self._advanced(4)  # states 0..5 published
        sos.evict(4)
        assert sorted(sos.published()) == [4, 5]
        assert sos.get(5) == sos.get(sos.frontier)

    def test_evicted_state_raises_with_diagnosis(self):
        sos = self._advanced(4)
        sos.evict(4)
        with pytest.raises(AnalysisError, match="evicted"):
            sos.get(2)
        # Truly-unpublished epochs keep the original diagnosis.
        with pytest.raises(AnalysisError, match="before"):
            sos.get(9)

    def test_frontier_never_evicted(self):
        sos = self._advanced(3)
        sos.evict(99)
        assert sos.get(sos.frontier) is not None
        sos.advance(3, {"new"}, lambda e: False)
        assert "new" in sos.get(sos.frontier)

    def test_evict_is_monotonic(self):
        sos = self._advanced(5)
        sos.evict(4)
        sos.evict(2)  # going backwards is a no-op
        assert sorted(sos.published()) == [4, 5, 6]

    def test_advance_continues_after_eviction(self):
        sos = self._advanced(3)
        sos.evict(sos.frontier)
        before = sos.get(sos.frontier)
        sos.advance(3, {"x"}, lambda e: False)
        assert sos.get(sos.frontier) == before | {"x"}
