"""Unit tests for butterfly windows."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.epoch import partition_fixed, partition_from_boundaries
from repro.core.window import butterfly_for, sliding_windows
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


def partition(threads=3, per_thread=9, h=3):
    prog = TraceProgram.from_lists(
        *[[Instr.nop() for _ in range(per_thread)] for _ in range(threads)]
    )
    return partition_fixed(prog, h)


class TestButterflyStructure:
    def test_interior_body(self):
        bf = butterfly_for(partition(), 1, 0)
        assert bf.body.block_id == (1, 0)
        assert bf.head.block_id == (0, 0)
        assert bf.tail.block_id == (2, 0)
        # Wings: epochs 0..2 of the other two threads.
        assert sorted(bf.wing_ids()) == [
            (0, 1), (0, 2), (1, 1), (1, 2), (2, 1), (2, 2)
        ]

    def test_first_epoch_has_no_head(self):
        bf = butterfly_for(partition(), 0, 1)
        assert bf.head is None
        assert {w[0] for w in bf.wing_ids()} == {0, 1}

    def test_last_epoch_has_no_tail(self):
        part = partition()
        bf = butterfly_for(part, part.num_epochs - 1, 2)
        assert bf.tail is None

    def test_wings_never_include_own_thread(self):
        bf = butterfly_for(partition(), 1, 1)
        assert all(t != 1 for (_, t) in bf.wing_ids())

    def test_single_thread_has_empty_wings(self):
        prog = TraceProgram.from_lists([Instr.nop()] * 6)
        from repro.core.epoch import partition_fixed

        bf = butterfly_for(partition_fixed(prog, 2), 1, 0)
        assert bf.wings == ()


class TestConcurrencyPredicate:
    def test_adjacent_other_thread_is_concurrent(self):
        bf = butterfly_for(partition(), 1, 0)
        assert bf.is_potentially_concurrent((0, 1))
        assert bf.is_potentially_concurrent((2, 2))

    def test_same_thread_never_concurrent(self):
        bf = butterfly_for(partition(), 1, 0)
        assert not bf.is_potentially_concurrent((1, 0))
        assert not bf.is_potentially_concurrent((0, 0))

    def test_distant_epoch_not_concurrent(self):
        part = partition(per_thread=15, h=3)
        bf = butterfly_for(part, 1, 0)
        assert not bf.is_potentially_concurrent((3, 1))

    def test_all_blocks_includes_window(self):
        bf = butterfly_for(partition(), 1, 0)
        ids = {b.block_id for b in bf.all_blocks()}
        assert (1, 0) in ids and (0, 0) in ids and (2, 0) in ids
        assert len(ids) == 9  # 3 own + 6 wings


class TestConcurrencyMatchesWings:
    """``is_potentially_concurrent`` must be exactly wing membership:
    the predicate and ``wing_ids()`` are two encodings of the same
    three-epoch window, including its first/last-epoch truncations."""

    @given(
        lengths=st.lists(st.integers(0, 6), min_size=1, max_size=4),
        h=st.integers(1, 4),
        data=st.data(),
    )
    @settings(max_examples=80)
    def test_predicate_agrees_with_wing_membership(self, lengths, h, data):
        if not any(lengths):
            lengths = list(lengths)
            lengths[0] = 1
        prog = TraceProgram.from_lists(
            *[[Instr.nop()] * n for n in lengths]
        )
        num_epochs = (max(lengths) + h - 1) // h
        boundaries = [
            [min((k + 1) * h, n) for k in range(num_epochs)]
            for n in lengths
        ]
        part = partition_from_boundaries(prog, boundaries)
        all_ids = [
            (l, t)
            for l in range(part.num_epochs)
            for t in range(part.num_threads)
        ]
        for lid in range(part.num_epochs):
            for tid in range(part.num_threads):
                bf = butterfly_for(part, lid, tid)
                wings = set(bf.wing_ids())
                for other in all_ids:
                    assert bf.is_potentially_concurrent(other) == (
                        other in wings
                    ), (bf.body_id, other)

    def test_first_and_last_epoch_explicitly(self):
        part = partition(threads=2, per_thread=6, h=2)
        first = butterfly_for(part, 0, 0)
        last = butterfly_for(part, part.num_epochs - 1, 0)
        for bf in (first, last):
            wings = set(bf.wing_ids())
            for l in range(part.num_epochs):
                for t in range(part.num_threads):
                    assert bf.is_potentially_concurrent((l, t)) == (
                        (l, t) in wings
                    )


class TestSlidingWindows:
    def test_yields_every_body_once(self):
        part = partition()
        bodies = [bf.body_id for bf in sliding_windows(part)]
        assert len(bodies) == part.num_epochs * part.num_threads
        assert len(set(bodies)) == len(bodies)

    def test_epoch_major_order(self):
        part = partition()
        bodies = [bf.body_id for bf in sliding_windows(part)]
        epochs = [l for l, _ in bodies]
        assert epochs == sorted(epochs)
