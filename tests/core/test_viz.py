"""Tests for the ASCII window renderer."""

from repro.core.epoch import partition_fixed
from repro.core.viz import render_butterfly, render_partition
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


def partition(threads=3, per_thread=12, h=3):
    prog = TraceProgram.from_lists(
        *[[Instr.nop() for _ in range(per_thread)] for _ in range(threads)]
    )
    return partition_fixed(prog, h)


class TestRenderPartition:
    def test_grid_shape(self):
        text = render_partition(partition())
        lines = text.splitlines()
        assert lines[0].startswith("epoch")
        assert len(lines) == 2 + 4  # header + rule + 4 epochs

    def test_truncation(self):
        text = render_partition(partition(per_thread=30), max_epochs=2)
        assert "more epochs" in text

    def test_sizes_shown(self):
        text = render_partition(partition())
        assert " 3 " in text


class TestRenderButterfly:
    def test_marks(self):
        text = render_butterfly(partition(), 1, 0)
        assert "B" in text and "H" in text and "T" in text and "w" in text

    def test_first_epoch_has_no_head_mark(self):
        text = render_butterfly(partition(), 0, 0)
        rows = [l for l in text.splitlines() if "|" in l][1:]
        assert not any(" H " in row for row in rows)

    def test_body_position(self):
        text = render_butterfly(partition(), 2, 1)
        body_row = next(
            l for l in text.splitlines() if l.strip().startswith("2 ")
        )
        cells = [c.strip() for c in body_row.split("|")[1:]]
        assert cells[1] == "B"

    def test_wings_exclude_own_thread(self):
        text = render_butterfly(partition(), 1, 1)
        for row in text.splitlines():
            if "|" not in row or row.startswith("epoch"):
                continue
            cells = [c.strip() for c in row.split("|")[1:]]
            if len(cells) == 3:
                assert cells[1] != "w"
