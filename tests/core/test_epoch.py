"""Unit tests for epoch partitioning."""

import random

import pytest

from repro.errors import PartitionError
from repro.trace.events import Instr
from repro.trace.program import TraceProgram
from repro.core.epoch import (
    EpochPartition,
    partition_by_global_order,
    partition_fixed,
    partition_from_boundaries,
    partition_with_skew,
)


def program(lengths):
    return TraceProgram.from_lists(
        *[[Instr.nop() for _ in range(n)] for n in lengths]
    )


class TestPartitionFixed:
    def test_even_split(self):
        part = partition_fixed(program([6, 6]), 2)
        assert part.num_epochs == 3
        assert all(len(part.block(l, t)) == 2 for l in range(3) for t in range(2))

    def test_ragged_tail(self):
        part = partition_fixed(program([5]), 2)
        assert part.num_epochs == 3
        assert [len(part.block(l, 0)) for l in range(3)] == [2, 2, 1]

    def test_uneven_threads_get_empty_blocks(self):
        part = partition_fixed(program([4, 2]), 2)
        assert part.num_epochs == 2
        assert len(part.block(1, 1)) == 0

    def test_blocks_tile_the_trace(self):
        prog = TraceProgram.from_lists(
            [Instr.write(i) for i in range(7)]
        )
        part = partition_fixed(prog, 3)
        recovered = [
            i for l in range(part.num_epochs) for i in part.block(l, 0)
        ]
        assert [i.dst for i in recovered] == list(range(7))

    def test_bad_epoch_size(self):
        with pytest.raises(PartitionError):
            partition_fixed(program([4]), 0)


class TestBlockAddressing:
    def test_instr_lookup(self):
        prog = TraceProgram.from_lists([Instr.write(i) for i in range(6)])
        part = partition_fixed(prog, 2)
        assert part.instr((1, 0, 1)).dst == 3

    def test_global_ref_round_trip(self):
        prog = TraceProgram.from_lists([Instr.write(i) for i in range(6)])
        part = partition_fixed(prog, 2)
        for idx in range(6):
            iid = part.instr_id_of(0, idx)
            assert part.global_ref_of(iid) == (0, idx)

    def test_epoch_of(self):
        part = partition_fixed(program([10]), 3)
        assert [part.epoch_of(0, i) for i in (0, 2, 3, 9)] == [0, 0, 1, 3]

    def test_out_of_range_block(self):
        part = partition_fixed(program([4]), 2)
        with pytest.raises(PartitionError):
            part.block(9, 0)
        with pytest.raises(PartitionError):
            part.block(0, 3)

    def test_iter_blocks_count(self):
        part = partition_fixed(program([6, 6]), 2)
        assert len(list(part.iter_blocks())) == 6


class TestSkewedPartition:
    def test_respects_skew_bound(self):
        part = partition_with_skew(
            program([100, 100]), 10, 4, rng=random.Random(0)
        )
        for t in range(2):
            for k, cut in enumerate(part.boundaries[t][:-1]):
                nominal = (k + 1) * 10
                assert abs(cut - nominal) <= 4

    def test_invalid_skew(self):
        with pytest.raises(PartitionError):
            partition_with_skew(program([10]), 4, 2)

    def test_blocks_still_tile(self):
        prog = TraceProgram.from_lists([Instr.write(i) for i in range(50)])
        part = partition_with_skew(prog, 10, 3, rng=random.Random(1))
        recovered = [
            i.dst
            for l in range(part.num_epochs)
            for i in part.block(l, 0)
        ]
        assert recovered == list(range(50))


class TestGlobalOrderPartition:
    def test_global_heartbeats_align_wall_clock(self):
        # Two threads, strictly alternating; heartbeat every 2*2=4
        # global events cuts each thread at 2 local events.
        prog = TraceProgram.from_lists(
            [Instr.nop()] * 6, [Instr.nop()] * 6
        )
        prog.true_order = [
            (t, i) for i in range(6) for t in (0, 1)
        ]
        part = partition_by_global_order(prog, 2)
        assert part.boundaries[0][:-1] == [2, 4, 6][: len(part.boundaries[0]) - 1]

    def test_imbalanced_threads_get_unequal_blocks(self):
        # Thread 0 executes 3x as fast as thread 1.
        order = []
        c = [0, 0]
        while c[0] < 9 or c[1] < 3:
            for _ in range(3):
                if c[0] < 9:
                    order.append((0, c[0]))
                    c[0] += 1
            if c[1] < 3:
                order.append((1, c[1]))
                c[1] += 1
        prog = TraceProgram.from_lists(
            [Instr.nop()] * 9, [Instr.nop()] * 3
        )
        prog.true_order = order
        part = partition_by_global_order(prog, 2)
        sizes0 = [len(part.block(l, 0)) for l in range(part.num_epochs)]
        sizes1 = [len(part.block(l, 1)) for l in range(part.num_epochs)]
        assert sum(sizes0) == 9 and sum(sizes1) == 3
        assert sizes0[0] > sizes1[0]

    def test_requires_recorded_order(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            partition_by_global_order(program([4]), 2)


class TestExplicitBoundaries:
    def test_valid(self):
        part = partition_from_boundaries(program([4, 4]), [[2, 4], [1, 4]])
        assert len(part.block(0, 1)) == 1
        assert len(part.block(1, 1)) == 3

    def test_must_end_at_length(self):
        with pytest.raises(PartitionError):
            partition_from_boundaries(program([4]), [[2, 3]])

    def test_must_be_sorted(self):
        with pytest.raises(PartitionError):
            partition_from_boundaries(program([4]), [[3, 2, 4]])

    def test_epoch_counts_must_agree(self):
        with pytest.raises(PartitionError):
            partition_from_boundaries(program([4, 4]), [[2, 4], [4]])

    def test_one_list_per_thread(self):
        with pytest.raises(PartitionError):
            partition_from_boundaries(program([4, 4]), [[4]])
