"""Unit tests for the interned-bitset summary representation."""

import random

from repro.core.bitset import BitInterner, popcount


class TestPopcount:
    def test_small_values(self):
        assert popcount(0) == 0
        assert popcount(1) == 1
        assert popcount(0b1011) == 3

    def test_huge_mask(self):
        mask = (1 << 1000) | (1 << 63) | 1
        assert popcount(mask) == 3


class TestBitInterner:
    def test_bit_positions_are_stable(self):
        bits = BitInterner()
        assert bits.bit("a") == 0
        assert bits.bit("b") == 1
        assert bits.bit("a") == 0
        assert len(bits) == 2

    def test_mask_decode_round_trip(self):
        bits = BitInterner()
        elements = {30, 10, 20}
        mask = bits.mask(elements)
        assert set(bits.decode(mask)) == elements
        assert popcount(mask) == 3

    def test_fresh_elements_interned_sorted(self):
        """Bit assignment must not depend on set iteration order."""
        a, b = BitInterner(), BitInterner()
        a.mask({5, 3, 9, 1})
        b.mask(frozenset([9, 1, 5, 3]))
        assert [a.bit(e) for e in (1, 3, 5, 9)] == [
            b.bit(e) for e in (1, 3, 5, 9)
        ]
        assert a.bit(1) == 0 and a.bit(9) == 3

    def test_mask_sort_key(self):
        bits = BitInterner()
        bits.mask({("y", 2), ("x", 9), ("x", 1)}, sort_key=lambda e: e[1])
        assert bits.bit(("x", 1)) == 0
        assert bits.bit(("y", 2)) == 1
        assert bits.bit(("x", 9)) == 2

    def test_decode_ascending_bit_order(self):
        bits = BitInterner()
        for e in ["c", "a", "b"]:
            bits.bit(e)
        mask = bits.mask(["a", "b", "c"])
        assert bits.decode(mask) == ["c", "a", "b"]  # interning order

    def test_union_via_or(self):
        bits = BitInterner()
        left = bits.mask({1, 2})
        right = bits.mask({2, 3})
        assert set(bits.decode(left | right)) == {1, 2, 3}
        assert set(bits.decode(left & right)) == {2}

    def test_contains(self):
        bits = BitInterner()
        mask = bits.mask({"x"})
        assert bits.contains(mask, "x")
        assert not bits.contains(mask, "y")
        assert not bits.contains(0, "x")

    def test_matches_set_semantics_randomized(self):
        rng = random.Random(11)
        bits = BitInterner()
        universe = list(range(64))
        for _ in range(50):
            s1 = set(rng.sample(universe, rng.randrange(12)))
            s2 = set(rng.sample(universe, rng.randrange(12)))
            m1, m2 = bits.mask(s1), bits.mask(s2)
            assert set(bits.decode(m1 | m2)) == s1 | s2
            assert set(bits.decode(m1 & m2)) == s1 & s2
            assert popcount(m1) == len(s1)
