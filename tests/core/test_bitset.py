"""Unit tests for the interned-bitset summary representation."""

import random

from repro.core.bitset import (
    BitInterner,
    _compose_mask,
    mask_from_words,
    mask_to_words,
    popcount,
    popcount_words,
)


class TestPopcount:
    def test_small_values(self):
        assert popcount(0) == 0
        assert popcount(1) == 1
        assert popcount(0b1011) == 3

    def test_huge_mask(self):
        mask = (1 << 1000) | (1 << 63) | 1
        assert popcount(mask) == 3


class TestBitInterner:
    def test_bit_positions_are_stable(self):
        bits = BitInterner()
        assert bits.bit("a") == 0
        assert bits.bit("b") == 1
        assert bits.bit("a") == 0
        assert len(bits) == 2

    def test_mask_decode_round_trip(self):
        bits = BitInterner()
        elements = {30, 10, 20}
        mask = bits.mask(elements)
        assert set(bits.decode(mask)) == elements
        assert popcount(mask) == 3

    def test_fresh_elements_interned_sorted(self):
        """Bit assignment must not depend on set iteration order."""
        a, b = BitInterner(), BitInterner()
        a.mask({5, 3, 9, 1})
        b.mask(frozenset([9, 1, 5, 3]))
        assert [a.bit(e) for e in (1, 3, 5, 9)] == [
            b.bit(e) for e in (1, 3, 5, 9)
        ]
        assert a.bit(1) == 0 and a.bit(9) == 3

    def test_mask_sort_key(self):
        bits = BitInterner()
        bits.mask({("y", 2), ("x", 9), ("x", 1)}, sort_key=lambda e: e[1])
        assert bits.bit(("x", 1)) == 0
        assert bits.bit(("y", 2)) == 1
        assert bits.bit(("x", 9)) == 2

    def test_decode_ascending_bit_order(self):
        bits = BitInterner()
        for e in ["c", "a", "b"]:
            bits.bit(e)
        mask = bits.mask(["a", "b", "c"])
        assert bits.decode(mask) == ["c", "a", "b"]  # interning order

    def test_union_via_or(self):
        bits = BitInterner()
        left = bits.mask({1, 2})
        right = bits.mask({2, 3})
        assert set(bits.decode(left | right)) == {1, 2, 3}
        assert set(bits.decode(left & right)) == {2}

    def test_contains(self):
        bits = BitInterner()
        mask = bits.mask({"x"})
        assert bits.contains(mask, "x")
        assert not bits.contains(mask, "y")
        assert not bits.contains(0, "x")

    def test_matches_set_semantics_randomized(self):
        rng = random.Random(11)
        bits = BitInterner()
        universe = list(range(64))
        for _ in range(50):
            s1 = set(rng.sample(universe, rng.randrange(12)))
            s2 = set(rng.sample(universe, rng.randrange(12)))
            m1, m2 = bits.mask(s1), bits.mask(s2)
            assert set(bits.decode(m1 | m2)) == s1 | s2
            assert set(bits.decode(m1 & m2)) == s1 & s2
            assert popcount(m1) == len(s1)

    def test_wide_masks_cross_vector_threshold(self):
        """Masks past the vector threshold (>= 64 bits) must behave
        exactly like narrow ones: ``mask``/``decode`` take the numpy
        fast path there when available."""
        bits = BitInterner()
        elements = set(range(0, 2000, 7))
        mask = bits.mask(elements)
        assert popcount(mask) == len(elements)
        decoded = bits.decode(mask)
        assert set(decoded) == elements
        # Ascending bit order == interning order (sorted fresh intern).
        assert decoded == sorted(elements)


class TestComposeMask:
    def test_matches_shift_or(self):
        rng = random.Random(5)
        for size in (0, 1, 63, 64, 65, 300):
            positions = list({rng.randrange(2048) for _ in range(size)})
            expected = 0
            for p in positions:
                expected |= 1 << p
            assert _compose_mask(positions) == expected

    def test_duplicate_positions(self):
        assert _compose_mask([3, 3, 3]) == 0b1000


class TestWireWords:
    def test_round_trip(self):
        rng = random.Random(9)
        masks = [0, 1, (1 << 63), (1 << 64) - 1, (1 << 1000) | 5]
        masks += [rng.getrandbits(500) for _ in range(20)]
        for mask in masks:
            words = mask_to_words(mask)
            assert len(words) % 8 == 0
            assert mask_from_words(words) == mask
            assert popcount_words(words) == popcount(mask)

    def test_empty(self):
        assert mask_from_words(b"") == 0
        assert popcount_words(b"") == 0
