"""Unit tests for the two-pass engine's sequencing."""

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyAnalysis, ButterflyEngine
from repro.errors import AnalysisError
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


class RecordingAnalysis(ButterflyAnalysis):
    """Records the order of engine callbacks."""

    def __init__(self):
        self.calls = []

    def first_pass(self, block):
        self.calls.append(("first", block.block_id))
        return block.block_id

    def meet(self, butterfly, wing_summaries):
        self.calls.append(("meet", butterfly.body_id, tuple(sorted(wing_summaries))))
        return wing_summaries

    def second_pass(self, butterfly, side_in):
        self.calls.append(("second", butterfly.body_id))

    def epoch_update(self, lid, summaries):
        self.calls.append(("epoch", lid, tuple(sorted(summaries))))


def partition(threads=2, per_thread=6, h=2):
    prog = TraceProgram.from_lists(
        *[[Instr.nop() for _ in range(per_thread)] for _ in range(threads)]
    )
    return partition_fixed(prog, h)


class TestSequencing:
    def test_first_pass_runs_one_epoch_ahead_of_second(self):
        analysis = RecordingAnalysis()
        ButterflyEngine(analysis).run(partition())
        calls = analysis.calls
        # Epoch 1's first passes happen before epoch 0's second passes.
        i_first_e1 = calls.index(("first", (1, 0)))
        i_second_e0 = calls.index(("second", (0, 0)))
        assert i_first_e1 < i_second_e0

    def test_every_block_gets_both_passes(self):
        analysis = RecordingAnalysis()
        ButterflyEngine(analysis).run(partition(threads=3, per_thread=8))
        firsts = {c[1] for c in analysis.calls if c[0] == "first"}
        seconds = {c[1] for c in analysis.calls if c[0] == "second"}
        assert firsts == seconds

    def test_epoch_updates_in_order(self):
        analysis = RecordingAnalysis()
        ButterflyEngine(analysis).run(partition())
        epochs = [c[1] for c in analysis.calls if c[0] == "epoch"]
        assert epochs == [0, 1, 2]

    def test_meet_receives_wing_summaries(self):
        analysis = RecordingAnalysis()
        ButterflyEngine(analysis).run(partition(threads=2, per_thread=6, h=2))
        meets = {c[1]: c[2] for c in analysis.calls if c[0] == "meet"}
        # Body (1,0) has wings (0,1),(1,1),(2,1).
        assert meets[(1, 0)] == ((0, 1), (1, 1), (2, 1))

    def test_single_epoch_program(self):
        analysis = RecordingAnalysis()
        ButterflyEngine(analysis).run(partition(per_thread=2, h=4))
        kinds = [c[0] for c in analysis.calls]
        assert kinds.count("first") == 2
        assert kinds.count("second") == 2
        assert kinds.count("epoch") == 1


class TestStreamingAPI:
    def test_out_of_order_feed_rejected(self):
        engine = ButterflyEngine(RecordingAnalysis())
        engine.attach(partition())
        with pytest.raises(AnalysisError):
            engine.feed_epoch(1)

    def test_finish_before_all_epochs_rejected(self):
        engine = ButterflyEngine(RecordingAnalysis())
        part = partition()
        engine.attach(part)
        engine.feed_epoch(0)
        with pytest.raises(AnalysisError):
            engine.finish()

    def test_double_attach_rejected(self):
        engine = ButterflyEngine(RecordingAnalysis())
        engine.attach(partition())
        with pytest.raises(AnalysisError):
            engine.attach(partition())

    def test_unattached_feed_rejected(self):
        engine = ButterflyEngine(RecordingAnalysis())
        with pytest.raises(AnalysisError):
            engine.feed_epoch(0)

    def test_finish_idempotent(self):
        engine = ButterflyEngine(RecordingAnalysis())
        part = partition()
        engine.attach(part)
        for l in range(part.num_epochs):
            engine.feed_epoch(l)
        engine.finish()
        engine.finish()  # no-op


class TestReset:
    def test_reset_allows_reattach(self):
        engine = ButterflyEngine(RecordingAnalysis())
        engine.run(partition())
        with pytest.raises(AnalysisError):
            engine.attach(partition())
        engine.reset()
        engine.attach(partition())  # no error

    def test_reset_clears_stats(self):
        engine = ButterflyEngine(RecordingAnalysis())
        stats = engine.run(partition())
        assert stats.first_pass_instructions > 0
        engine.reset()
        assert engine.stats.first_pass_instructions == 0
        assert engine.stats.epochs_processed == 0

    def test_rerun_after_reset_counts_fresh(self):
        """Regression: reusing an engine must not accumulate stale
        counters from an earlier (possibly aborted) run."""
        engine = ButterflyEngine(RecordingAnalysis())
        first = engine.run(partition())
        engine.reset()
        engine.analysis = RecordingAnalysis()
        second = engine.run(partition())
        assert second == first

    def test_reset_after_midrun_error(self):
        engine = ButterflyEngine(RecordingAnalysis())
        part = partition()
        engine.attach(part)
        engine.feed_epoch(0)
        with pytest.raises(AnalysisError):
            engine.feed_epoch(2)  # out of order: aborts the run
        assert engine.stats.first_pass_instructions > 0
        engine.reset()
        engine.analysis = RecordingAnalysis()
        stats = engine.run(part)
        assert stats.first_pass_instructions == 12


class TestStats:
    def test_instruction_counters(self):
        analysis = RecordingAnalysis()
        engine = ButterflyEngine(analysis)
        stats = engine.run(partition(threads=2, per_thread=6))
        assert stats.first_pass_instructions == 12
        assert stats.second_pass_instructions == 12
        assert stats.epochs_processed == 3
        assert stats.meets == 6
