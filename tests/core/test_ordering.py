"""Unit tests for valid orderings (the correctness oracle)."""

import random

import pytest

from repro.core.epoch import partition_fixed, partition_from_boundaries
from repro.core.ordering import (
    all_valid_orderings,
    is_valid_ordering,
    random_valid_ordering,
    serialize_ordering,
)
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


def partition(lengths=(4, 4), h=2):
    prog = TraceProgram.from_lists(
        *[[Instr.write(t * 100 + i) for i in range(n)] for t, n in enumerate(lengths)]
    )
    return partition_fixed(prog, h)


class TestEnumeration:
    def test_all_orderings_are_valid(self):
        part = partition()
        for order in all_valid_orderings(part):
            assert is_valid_ordering(part, order)

    def test_covers_all_instructions(self):
        part = partition()
        for order in all_valid_orderings(part):
            assert len(order) == 8
            assert len(set(order)) == 8

    def test_two_epoch_rule_reduces_count(self):
        # With one epoch (h=4) all interleavings are valid: C(8,4)=70.
        # With h=2 (two epochs), epoch 0 of each thread must precede
        # epoch 2 of the other -- fewer orderings than unrestricted.
        unrestricted = len(list(all_valid_orderings(partition(h=4))))
        restricted = len(list(all_valid_orderings(partition(h=1))))
        assert unrestricted == 70
        assert restricted < unrestricted

    def test_single_epoch_matches_all_interleavings(self):
        from repro.trace.interleave import count_interleavings

        part = partition(lengths=(3, 2), h=5)
        assert len(list(all_valid_orderings(part))) == count_interleavings(
            part.program
        )

    def test_up_to_epoch_prefix(self):
        part = partition(lengths=(4, 4), h=2)
        for order in all_valid_orderings(part, up_to_epoch=0):
            assert len(order) == 4
            assert all(l == 0 for (l, _, _) in order)


class TestTwoEpochRule:
    def test_epoch_gap_enforced(self):
        # h=1: each instruction its own epoch.  Instruction (2,t,0)
        # cannot precede (0,t',0).
        part = partition(lengths=(3, 3), h=1)
        bad = [
            (2, 0, 0), (0, 0, 0), (1, 0, 0),
            (0, 1, 0), (1, 1, 0), (2, 1, 0),
        ]
        assert not is_valid_ordering(part, bad)

    def test_adjacent_epochs_may_interleave(self):
        part = partition(lengths=(2, 2), h=1)
        ok = [(0, 0, 0), (0, 1, 0), (1, 1, 0), (1, 0, 0)]
        assert is_valid_ordering(part, ok)
        ok2 = [(0, 1, 0), (1, 1, 0), (0, 0, 0), (1, 0, 0)]
        assert is_valid_ordering(part, ok2)


class TestDegenerateShapes:
    """Empty threads, empty epochs, and empty programs are legal
    partitions; the oracle must enumerate them, not crash."""

    def test_empty_thread(self):
        prog = TraceProgram.from_lists(
            [Instr.write(0), Instr.write(1)], []
        )
        part = partition_from_boundaries(prog, [[1, 2], [0, 0]])
        orders = list(all_valid_orderings(part))
        assert orders == [[(0, 0, 0), (1, 0, 0)]]
        rng = random.Random(3)
        assert is_valid_ordering(part, random_valid_ordering(part, rng))

    def test_empty_final_epoch(self):
        prog = TraceProgram.from_lists([Instr.write(0), Instr.write(1)])
        part = partition_from_boundaries(prog, [[1, 2, 2]])
        orders = list(all_valid_orderings(part))
        assert orders == [[(0, 0, 0), (1, 0, 0)]]

    def test_empty_program(self):
        prog = TraceProgram.from_lists([])
        part = partition_from_boundaries(prog, [[0]])
        assert list(all_valid_orderings(part)) == [[]]
        assert is_valid_ordering(part, [])
        assert random_valid_ordering(part, random.Random(0)) == []

    def test_interleaved_empty_blocks(self):
        # Thread 1's middle epoch is empty; the two-epoch rule must
        # still be enforced around it.
        prog = TraceProgram.from_lists(
            [Instr.write(0), Instr.write(1), Instr.write(2)],
            [Instr.write(100)],
        )
        part = partition_from_boundaries(prog, [[1, 2, 3], [1, 1, 1]])
        for order in all_valid_orderings(part):
            assert is_valid_ordering(part, order)
            assert len(order) == 4

    def test_up_to_epoch_out_of_range_rejected(self):
        part = partition(lengths=(2, 2), h=1)
        with pytest.raises(ValueError, match="out of range"):
            list(all_valid_orderings(part, up_to_epoch=part.num_epochs))
        with pytest.raises(ValueError, match="out of range"):
            list(all_valid_orderings(part, up_to_epoch=-1))
        with pytest.raises(ValueError, match="out of range"):
            random_valid_ordering(
                part, random.Random(0), up_to_epoch=part.num_epochs
            )


class TestRandomOrdering:
    def test_random_orderings_valid(self):
        part = partition(lengths=(5, 5), h=2)
        rng = random.Random(0)
        for _ in range(25):
            order = random_valid_ordering(part, rng)
            assert is_valid_ordering(part, order)

    def test_program_order_violation_rejected(self):
        part = partition(lengths=(2, 2), h=2)
        assert not is_valid_ordering(
            part, [(0, 0, 1), (0, 0, 0), (0, 1, 0), (0, 1, 1)]
        )


class TestSerialize:
    def test_serialize_matches_instrs(self):
        part = partition(lengths=(2, 2), h=2)
        order = random_valid_ordering(part, random.Random(1))
        instrs = serialize_ordering(part, order)
        assert sorted(i.dst for i in instrs) == [0, 1, 100, 101]
