"""Unit and oracle tests for dynamic parallel reaching expressions."""

import random

import pytest

from repro.core.dataflow import Expression
from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.core.ordering import all_valid_orderings
from repro.core.reaching_exprs import ReachingExpressions
from repro.trace.events import Instr, Op
from repro.trace.generator import random_program
from repro.trace.program import TraceProgram


def run_exprs(program, h, **kwargs):
    analysis = ReachingExpressions(**kwargs)
    ButterflyEngine(analysis).run(partition_fixed(program, h))
    return analysis


def sequential_available(instr_seq):
    """Oracle: expressions available after executing a sequence."""
    avail = set()
    for instr in instr_seq:
        if instr.dst is not None and instr.op in (
            Op.WRITE, Op.ASSIGN, Op.TAINT, Op.UNTAINT
        ):
            avail = {e for e in avail if instr.dst not in e.operands}
        if instr.op is Op.ASSIGN and instr.srcs:
            avail.add(Expression.of(*instr.srcs))
    return avail


class TestBasics:
    def test_single_thread_matches_sequential(self):
        prog = TraceProgram.from_lists(
            [Instr.assign(0, 1, 2), Instr.write(1), Instr.assign(3, 4)]
        )
        analysis = run_exprs(prog, 1)
        final = analysis.sos.get(analysis.sos.frontier)
        assert Expression.of(1, 2) not in final  # killed by write(1)
        assert Expression.of(4) in final

    def test_concurrent_kill_defeats_generation(self):
        # Thread 0 computes a+b while thread 1 may concurrently write
        # a: no valid guarantee, so the expression must not reach.
        prog = TraceProgram.from_lists(
            [Instr.assign(9, 1, 2)],
            [Instr.write(1)],
        )
        analysis = run_exprs(prog, 1)
        final = analysis.sos.get(analysis.sos.frontier)
        assert Expression.of(1, 2) not in final

    def test_both_threads_generate_reaches(self):
        # Every thread computes the expression and nobody kills it.
        prog = TraceProgram.from_lists(
            [Instr.assign(8, 1, 2)],
            [Instr.assign(9, 1, 2)],
        )
        analysis = run_exprs(prog, 1)
        final = analysis.sos.get(analysis.sos.frontier)
        assert Expression.of(1, 2) in final

    def test_kill_side_in_is_wing_var_union(self):
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.nop()],
            [Instr.write(3), Instr.write(4)],
        )
        analysis = run_exprs(prog, 1)
        assert analysis.side_in[(0, 0)] == {3, 4}

    def test_in_removes_side_killed(self):
        # Expression computed long ago; a wing writes an operand; the
        # body's IN must not contain it.
        prog = TraceProgram.from_lists(
            [Instr.assign(9, 1, 2), Instr.nop(), Instr.nop(), Instr.read(9)],
            [Instr.nop(), Instr.nop(), Instr.write(1), Instr.nop()],
        )
        analysis = run_exprs(prog, 1)
        assert Expression.of(1, 2) in analysis.sos.get(3)
        assert Expression.of(1, 2) not in analysis.block_in[(3, 0)]


class TestForallSemantics:
    """Reaching expressions use forall-orderings semantics: the SOS may
    only contain expressions available under EVERY valid ordering."""

    @pytest.mark.parametrize("seed", range(12))
    def test_sos_subset_of_every_ordering(self, seed):
        rng = random.Random(seed)
        prog = random_program(
            rng, num_threads=2, length=3, num_locations=3,
            ops=(Op.ASSIGN, Op.WRITE, Op.NOP),
        )
        h = 1
        part = partition_fixed(prog, h)
        analysis = run_exprs(prog, h)
        for lid in range(2, part.num_epochs + 2):
            upto = lid - 2
            per_order = None
            for order in all_valid_orderings(part, up_to_epoch=upto):
                avail = sequential_available(
                    [part.instr(iid) for iid in order]
                )
                per_order = avail if per_order is None else per_order & avail
            must = per_order or set()
            sos = analysis.sos.get(lid)
            # Conservative direction: anything the analysis claims
            # reaches must reach under all orderings.
            assert sos <= must | set(), (
                f"epoch {lid}: claimed {sos - must} not universally available"
            )


class TestLSOS:
    def test_head_gen_dropped_if_sibling_killed_in_l_minus_2(self):
        # Head (epoch 1, thread 0) computes a+b, but thread 1 writes a
        # in epoch 0 -- adjacent to the head, so a path exists where
        # the kill lands after the computation: not in LSOS_{2,0}.
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.assign(9, 1, 2), Instr.read(9)],
            [Instr.write(1), Instr.nop(), Instr.nop()],
        )
        analysis = run_exprs(prog, 1)
        assert Expression.of(1, 2) not in analysis.block_lsos[(2, 0)]

    def test_head_gen_kept_without_sibling_kill(self):
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.assign(9, 1, 2), Instr.read(9)],
            [Instr.nop(), Instr.nop(), Instr.nop()],
        )
        analysis = run_exprs(prog, 1)
        assert Expression.of(1, 2) in analysis.block_lsos[(2, 0)]

    def test_sos_survivors_of_head_kill(self):
        prog = TraceProgram.from_lists(
            [Instr.assign(9, 1, 2), Instr.nop(), Instr.write(1), Instr.read(9)],
        )
        analysis = run_exprs(prog, 1)
        # Single thread: expression enters SOS, then the head (epoch 2)
        # kills it before the body (epoch 3).
        assert Expression.of(1, 2) not in analysis.block_lsos[(3, 0)]
