"""Tests for the event dispatcher."""

import pytest

from repro.errors import SimulationError
from repro.lifeguards.sequential import SequentialAddrCheck, SequentialTaintCheck
from repro.sim.dispatch import (
    EventDispatcher,
    addrcheck_dispatcher,
    taintcheck_dispatcher,
)
from repro.trace.events import Instr, Op


class TestEventDispatcher:
    def test_registered_events_delivered(self):
        seen = []
        d = EventDispatcher()
        d.register(Op.READ, lambda ref, i: seen.append(i))
        assert d.dispatch((0, 0), Instr.read(5))
        assert seen and seen[0].srcs == (5,)

    def test_unregistered_events_masked(self):
        d = EventDispatcher()
        d.register(Op.READ, lambda ref, i: None)
        assert not d.dispatch((0, 0), Instr.nop())
        assert d.masked == 1
        assert d.delivered == 0

    def test_double_registration_rejected(self):
        d = EventDispatcher()
        d.register(Op.READ, lambda ref, i: None)
        with pytest.raises(SimulationError):
            d.register(Op.READ, lambda ref, i: None)

    def test_mask_property(self):
        d = EventDispatcher()
        d.register_many((Op.READ, Op.WRITE), lambda ref, i: None)
        assert d.mask == {Op.READ, Op.WRITE}

    def test_dispatch_stream_counts(self):
        d = EventDispatcher()
        d.register(Op.WRITE, lambda ref, i: None)
        stream = [((0, i), instr) for i, instr in enumerate(
            [Instr.write(1), Instr.nop(), Instr.write(2)]
        )]
        assert d.dispatch_stream(stream) == 2


class TestLifeguardWiring:
    def test_addrcheck_dispatcher_catches_bug(self):
        guard = SequentialAddrCheck()
        d = addrcheck_dispatcher(guard)
        d.dispatch((0, 0), Instr.read(9))
        assert len(guard.errors) == 1

    def test_addrcheck_masks_compute(self):
        guard = SequentialAddrCheck()
        d = addrcheck_dispatcher(guard)
        d.dispatch((0, 0), Instr.nop())
        assert guard.events_processed == 0

    def test_taintcheck_dispatcher_masks_memory_only_events(self):
        guard = SequentialTaintCheck()
        d = taintcheck_dispatcher(guard)
        assert not d.dispatch((0, 0), Instr.read(1))  # reads carry no taint
        assert d.dispatch((0, 1), Instr.taint(1))
        assert d.dispatch((0, 2), Instr.jump(1))
        assert len(guard.errors) == 1
