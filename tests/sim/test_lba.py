"""Integration tests for the LBA system model."""

import pytest

from repro.sim.lba import LBASystem
from repro.workloads.registry import get_benchmark


@pytest.fixture(scope="module")
def small_run():
    prog = get_benchmark("OCEAN").generate(2, 4096, seed=3)
    system = LBASystem()
    return prog, system


class TestBaselines:
    def test_sequential_unmonitored(self, small_run):
        prog, system = small_run
        result = system.unmonitored_sequential(prog)
        assert result.cycles > 0
        assert result.lifeguard_cycles == 0

    def test_parallel_beats_sequential(self, small_run):
        prog, system = small_run
        seq = system.unmonitored_sequential(prog)
        par = system.unmonitored_parallel(prog)
        assert par.cycles < seq.cycles

    def test_timesliced_is_coupled(self, small_run):
        prog, system = small_run
        ts = system.timesliced(prog)
        assert ts.cycles == max(ts.app_cycles, ts.lifeguard_cycles)
        assert 0.0 <= ts.extras["filter_rate"] <= 1.0


class TestButterflySystem:
    def test_butterfly_runs_real_lifeguard(self, small_run):
        prog, system = small_run
        run = system.butterfly(prog, 512)
        assert run.result.cycles > 0
        assert run.partition.num_epochs >= 2
        assert run.engine_stats.epochs_processed == run.partition.num_epochs

    def test_monitoring_slower_than_unmonitored(self, small_run):
        prog, system = small_run
        par = system.unmonitored_parallel(prog)
        bf = system.butterfly(prog, 512)
        assert bf.result.cycles >= par.cycles

    def test_epoch_size_changes_epoch_count(self, small_run):
        prog, system = small_run
        small = system.butterfly(prog, 256)
        large = system.butterfly(prog, 2048)
        assert small.partition.num_epochs > large.partition.num_epochs

    def test_counters_cover_every_block(self, small_run):
        prog, system = small_run
        run = system.butterfly(prog, 512)
        part = run.partition
        for lid in range(part.num_epochs):
            for tid in range(part.num_threads):
                if len(part.block(lid, tid)):
                    assert (lid, tid) in run.guard.block_work
