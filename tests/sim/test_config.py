"""Unit tests for Table 1's machine configuration."""

import pytest

from repro.errors import SimulationError
from repro.sim.config import CacheConfig, LifeguardCostModel, MachineConfig


class TestMachineConfig:
    def test_table1_defaults(self):
        config = MachineConfig()
        assert config.clock_ghz == 1.0
        assert config.line_bytes == 64
        assert config.l1i.size_bytes == 64 * 1024
        assert config.l1d.latency_cycles == 2
        assert config.l2_latency == 6
        assert config.memory_latency == 90
        assert config.log_buffer_bytes == 8 * 1024

    def test_for_app_threads_doubles_cores(self):
        assert MachineConfig.for_app_threads(4).cores == 8

    def test_for_app_threads_validates(self):
        with pytest.raises(SimulationError):
            MachineConfig.for_app_threads(0)

    def test_log_buffer_entries(self):
        config = MachineConfig()
        assert config.log_buffer_entries == 8 * 1024 // 16

    def test_table_rows_render(self):
        rows = dict(MachineConfig(cores=4).table_rows())
        assert rows["Line size"] == "64B"
        assert "90 cycle latency" in rows["Memory"]
        assert rows["Log buffer"] == "8KB"
        assert "4-way set-assoc" in rows["L1-D"]


class TestCacheConfig:
    def test_geometry(self):
        c = CacheConfig(64 * 1024, 64, 4, 2)
        assert c.num_lines == 1024
        assert c.num_sets == 256

    def test_validation(self):
        with pytest.raises(SimulationError):
            CacheConfig(100, 64, 4, 1).validate()

    def test_zero_line_bytes_rejected_not_zero_division(self):
        with pytest.raises(SimulationError):
            CacheConfig(64 * 1024, 0, 4, 2).validate()

    def test_zero_associativity_rejected_not_zero_division(self):
        with pytest.raises(SimulationError):
            CacheConfig(64 * 1024, 64, 0, 2).validate()

    def test_degenerate_num_sets_rejected(self):
        # size == line_bytes * associativity -> one set is legal;
        # anything smaller must be a SimulationError, not a % 0 crash.
        CacheConfig(64 * 4, 64, 4, 2).validate()
        with pytest.raises(SimulationError):
            CacheConfig(64 * 2, 64, 4, 2).validate()

    def test_single_set_cache_simulates(self):
        from repro.sim.cache import SetAssocCache

        cache = SetAssocCache(CacheConfig(64 * 4, 64, 4, 2))
        for addr in (0, 64, 128, 192, 256):
            cache.access(addr)
        assert cache.hits + cache.misses == 5


class TestCostModel:
    def test_paper_record_overhead_range(self):
        # The paper reports 7-10 instructions per monitored load/store.
        costs = LifeguardCostModel()
        assert 6 <= costs.record_cycles <= 12

    def test_frozen(self):
        costs = LifeguardCostModel()
        with pytest.raises(Exception):
            costs.dispatch_cycles = 99
