"""Unit tests for cores and parallel execution."""

from repro.sim.cmp import (
    Core,
    run_parallel,
    run_serialized,
)
from repro.sim.config import MachineConfig
from repro.sim.memory import build_hierarchies
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


class TestCore:
    def test_nop_costs_one_cycle(self):
        core = Core(build_hierarchies(MachineConfig(), 1)[0])
        result = core.execute([Instr.nop()] * 10)
        assert result.cycles == 10
        assert result.memory_accesses == 0

    def test_memory_ops_add_latency(self):
        core = Core(build_hierarchies(MachineConfig(), 1)[0])
        result = core.execute([Instr.read(0)])
        assert result.cycles > 1
        assert result.memory_accesses == 1

    def test_assign_touches_all_locations(self):
        core = Core(build_hierarchies(MachineConfig(), 1)[0])
        result = core.execute([Instr.assign(0, 1, 2)])
        assert result.memory_accesses == 3


class TestRunParallel:
    def test_critical_path_is_max_thread(self):
        prog = TraceProgram.from_lists(
            [Instr.nop()] * 100, [Instr.nop()] * 10
        )
        result = run_parallel(prog, MachineConfig(cores=4))
        assert result.cycles == 100
        assert result.total_instructions == 110

    def test_parallel_faster_than_serial_for_balanced_work(self):
        prog = TraceProgram.from_lists(
            [Instr.nop()] * 50, [Instr.nop()] * 50
        )
        par = run_parallel(prog, MachineConfig(cores=4))
        ser = run_serialized(prog, MachineConfig(cores=4))
        assert par.cycles < ser.cycles


class TestRunSerialized:
    def test_uses_given_order(self):
        prog = TraceProgram.from_lists([Instr.nop()], [Instr.nop()])
        result = run_serialized(
            prog, MachineConfig(), order=[(1, 0), (0, 0)]
        )
        assert result.instructions == 2

    def test_falls_back_to_round_robin(self):
        prog = TraceProgram.from_lists([Instr.nop()] * 3, [Instr.nop()] * 3)
        result = run_serialized(prog, MachineConfig())
        assert result.instructions == 6
