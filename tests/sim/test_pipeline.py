"""Tests for the streaming LBA co-simulation."""

import pytest

from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.sim.config import LifeguardCostModel
from repro.sim.lba import LBASystem
from repro.sim.pipeline import StreamingLBASimulation
from repro.workloads.registry import get_benchmark


@pytest.fixture(scope="module")
def streamed():
    prog = get_benchmark("OCEAN").generate(2, 6144, seed=5)
    sim = StreamingLBASimulation(prog, epoch_size=512)
    return prog, sim.run()


class TestStreamingSimulation:
    def test_runs_all_epochs(self, streamed):
        prog, result = streamed
        assert result.epochs == result.partition.num_epochs
        assert result.cycles > 0

    def test_analysis_identical_to_batch_run(self, streamed):
        """Streaming arrival must not change the analysis: same error
        log as the one-shot engine over the same partition."""
        prog, result = streamed
        batch = ButterflyAddrCheck(initially_allocated=prog.preallocated)
        ButterflyEngine(batch).run(partition_by_global_order(prog, 512))
        assert {r.identity() for r in batch.errors} == {
            r.identity() for r in result.guard.errors
        }

    def test_app_stalls_when_lifeguard_slower(self):
        prog = get_benchmark("BARNES").generate(2, 4096, seed=5)
        costs = LifeguardCostModel(check_cycles=200, record_cycles=50)
        sim = StreamingLBASimulation(prog, epoch_size=512, costs=costs)
        result = sim.run()
        assert result.total_stall_cycles > 0

    def test_no_stalls_with_free_lifeguard(self):
        prog = get_benchmark("BLACKSCHOLES").generate(2, 4096, seed=5)
        costs = LifeguardCostModel(
            dispatch_cycles=0, check_cycles=0, record_cycles=0,
            second_pass_cycles=0,
        )
        sim = StreamingLBASimulation(prog, epoch_size=512, costs=costs)
        result = sim.run()
        assert result.total_stall_cycles == 0

    def test_agrees_with_analytical_model_in_magnitude(self, streamed):
        prog, result = streamed
        analytical = LBASystem().butterfly(prog, 512)
        ratio = result.cycles / analytical.result.cycles
        assert 0.4 < ratio < 2.5, ratio

    def test_per_thread_accounting(self, streamed):
        prog, result = streamed
        for t in range(prog.num_threads):
            assert result.app_cycles_by_thread[t] > 0
            assert result.lifeguard_cycles_by_thread[t] > 0
