"""Unit tests for the idempotent filter."""

import pytest

from repro.sim.accelerators import IdempotentFilter, filtered_event_counts
from repro.trace.events import Instr


class TestIdempotentFilter:
    def test_first_access_admitted(self):
        filt = IdempotentFilter()
        assert filt.admit(Instr.read(5))

    def test_repeat_access_filtered(self):
        filt = IdempotentFilter()
        filt.admit(Instr.read(5))
        assert not filt.admit(Instr.read(5))
        assert not filt.admit(Instr.write(5))

    def test_alloc_event_rearms(self):
        filt = IdempotentFilter()
        filt.admit(Instr.read(5))
        assert filt.admit(Instr.free(5))
        assert filt.admit(Instr.read(5))

    def test_alloc_events_always_admitted(self):
        filt = IdempotentFilter()
        assert filt.admit(Instr.malloc(0, 4))
        assert filt.admit(Instr.malloc(0, 4))

    def test_non_memory_admitted(self):
        filt = IdempotentFilter()
        assert filt.admit(Instr.nop())

    def test_flush_resets(self):
        filt = IdempotentFilter()
        filt.admit(Instr.read(5))
        filt.flush()
        assert filt.admit(Instr.read(5))

    def test_capacity_eviction(self):
        filt = IdempotentFilter(capacity=2)
        filt.admit(Instr.read(1))
        filt.admit(Instr.read(2))
        filt.admit(Instr.read(3))  # evicts loc 1
        assert filt.admit(Instr.read(1))

    def test_lru_refresh(self):
        filt = IdempotentFilter(capacity=2)
        filt.admit(Instr.read(1))
        filt.admit(Instr.read(2))
        assert not filt.admit(Instr.read(1))  # refresh 1
        filt.admit(Instr.read(3))  # evicts 2, not 1
        assert not filt.admit(Instr.read(1))

    def test_filter_rate(self):
        filt = IdempotentFilter()
        filt.admit(Instr.read(1))
        filt.admit(Instr.read(1))
        assert filt.filter_rate == 0.5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            IdempotentFilter(capacity=0)


class TestFilteredEventCounts:
    def test_epoch_flush_boundaries(self):
        instrs = [Instr.read(1)] * 6
        dispatched, filtered = filtered_event_counts(instrs, epoch_size=3)
        # One check per epoch of 3: 2 dispatched, 4 filtered.
        assert dispatched == 2
        assert filtered == 4
