"""Unit tests for the memory hierarchy."""

from repro.sim.config import MachineConfig
from repro.sim.memory import MemoryHierarchy, SharedL2, build_hierarchies


class TestHierarchy:
    def test_l1_hit_cost(self):
        config = MachineConfig()
        h = build_hierarchies(config, 1)[0]
        h.access(0)  # cold
        assert h.access(0) == config.l1d.latency_cycles

    def test_l1_miss_l2_hit_cost(self):
        config = MachineConfig()
        hs = build_hierarchies(config, 2)
        hs[0].access(0)  # installs in L1[0] and shared L2
        cost = hs[1].access(0)  # L1[1] miss, L2 hit
        assert cost == config.l1d.latency_cycles + config.l2.latency_cycles

    def test_cold_miss_goes_to_memory(self):
        config = MachineConfig()
        h = build_hierarchies(config, 1)[0]
        cost = h.access(0)
        assert cost == (
            config.l1d.latency_cycles
            + config.l2.latency_cycles
            + config.memory_latency
        )

    def test_shared_l2_visible_across_cores(self):
        config = MachineConfig()
        shared = SharedL2(config)
        a = MemoryHierarchy(config, shared)
        b = MemoryHierarchy(config, shared)
        a.access(128)
        assert b.access(128) < (
            config.l1d.latency_cycles
            + config.l2.latency_cycles
            + config.memory_latency
        )

    def test_cycle_accumulation(self):
        config = MachineConfig()
        h = build_hierarchies(config, 1)[0]
        c1 = h.access(0)
        c2 = h.access(0)
        assert h.cycles == c1 + c2


class TestL2Scaling:
    def test_l2_size_scales_with_cores(self):
        assert MachineConfig(cores=4).l2.size_bytes == 2 * 1024 * 1024
        assert MachineConfig(cores=8).l2.size_bytes == 4 * 1024 * 1024
        assert MachineConfig(cores=16).l2.size_bytes == 8 * 1024 * 1024
