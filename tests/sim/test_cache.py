"""Unit tests for the set-associative cache model."""

import pytest

from repro.errors import SimulationError
from repro.sim.cache import SetAssocCache
from repro.sim.config import CacheConfig


def cache(size=1024, line=64, assoc=2):
    return SetAssocCache(CacheConfig(size, line, assoc, 1))


class TestSetAssocCache:
    def test_cold_miss_then_hit(self):
        c = cache()
        assert not c.access(0)
        assert c.access(0)

    def test_same_line_hits(self):
        c = cache(line=64)
        c.access(0)
        assert c.access(63)
        assert not c.access(64)

    def test_lru_within_set(self):
        c = cache(size=256, line=64, assoc=2)  # 2 sets, 2 ways
        # Lines 0 and 2 map to set 0 (line_index % 2).
        c.access(0)        # line 0 -> set 0
        c.access(128)      # line 2 -> set 0
        c.access(0)        # refresh line 0
        c.access(256)      # line 4 -> set 0: evicts line 2
        assert c.access(0)
        assert not c.access(128)

    def test_flush(self):
        c = cache()
        c.access(0)
        c.flush()
        assert not c.access(0)

    def test_hit_rate(self):
        c = cache()
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.hit_rate == pytest.approx(2 / 3)

    def test_contains(self):
        c = cache()
        c.access(0)
        assert c.contains(32)
        assert not c.contains(4096)

    def test_invalid_geometry(self):
        with pytest.raises(SimulationError):
            SetAssocCache(CacheConfig(100, 64, 2, 1))
