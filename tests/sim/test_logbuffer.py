"""Unit tests for the log buffer's stall mechanics."""

import pytest

from repro.errors import SimulationError
from repro.sim.logbuffer import LogBuffer, coupled_time


class TestLogBuffer:
    def test_produce_within_capacity(self):
        buf = LogBuffer(10)
        assert buf.produce(5) == 5
        assert buf.occupancy == 5

    def test_produce_clipped_at_capacity(self):
        buf = LogBuffer(10)
        buf.produce(8)
        assert buf.produce(5) == 2
        assert buf.occupancy == 10

    def test_consume(self):
        buf = LogBuffer(10)
        buf.produce(6)
        assert buf.consume(4) == 4
        assert buf.consume(10) == 2

    def test_high_watermark(self):
        buf = LogBuffer(10)
        buf.produce(7)
        buf.consume(7)
        buf.produce(3)
        assert buf.stats.high_watermark == 7

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            LogBuffer(0)


class TestSimulate:
    def test_fast_consumer_no_stalls(self):
        buf = LogBuffer(64)
        stats = buf.simulate(
            total_records=1000, produce_rate=0.5, consume_rate=1.0
        )
        assert stats.stall_cycles == 0
        assert stats.consumed == 1000

    def test_slow_consumer_causes_stalls(self):
        buf = LogBuffer(64)
        stats = buf.simulate(
            total_records=10000, produce_rate=1.0, consume_rate=0.25
        )
        assert stats.stall_cycles > 0
        assert stats.consumed == 10000

    def test_rates_must_be_positive(self):
        with pytest.raises(SimulationError):
            LogBuffer(8).simulate(10, 0, 1)


class TestCoupledTime:
    def test_lifeguard_bound(self):
        assert coupled_time(100, 400) == 400

    def test_app_bound(self):
        assert coupled_time(500, 200) == 500
