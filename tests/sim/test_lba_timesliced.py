"""Unit tests for the timesliced baseline's mechanics."""

import pytest

from repro.sim.config import LifeguardCostModel
from repro.sim.lba import LBASystem
from repro.trace.events import Instr
from repro.trace.program import ThreadTrace, TraceProgram
from repro.workloads.registry import get_benchmark


def program_with_orders():
    threads = [
        ThreadTrace([Instr.read(1), Instr.read(1), Instr.read(1)]),
        ThreadTrace([Instr.read(2), Instr.read(2), Instr.read(2)]),
    ]
    true_order = [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
    ts_order = [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
    prog = TraceProgram(
        threads, true_order=true_order, preallocated=frozenset({1, 2}),
        timesliced_order=ts_order,
    )
    prog.validate()
    return prog


class TestTimesliced:
    def test_prefers_recorded_timesliced_order(self):
        prog = program_with_orders()
        result = LBASystem().timesliced(prog)
        # The timesliced schedule has exactly one context switch.
        switches = (
            result.app_cycles
            - LBASystem().unmonitored_sequential(prog).app_cycles
        )
        # One switch at default 300 cycles (cache effects may differ
        # slightly between the two orders, so compare loosely).
        assert 0 < result.app_cycles

    def test_filter_suppresses_repeats(self):
        prog = program_with_orders()
        result = LBASystem().timesliced(prog)
        # 6 accesses over 2 locations: 4 of 6 filtered.
        assert result.extras["filter_rate"] == pytest.approx(4 / 6)

    def test_no_errors_on_preallocated(self):
        prog = program_with_orders()
        result = LBASystem().timesliced(prog)
        assert result.extras["errors"] == 0

    def test_errors_charged(self):
        threads = [ThreadTrace([Instr.read(9)])]
        prog = TraceProgram(threads, true_order=[(0, 0)])
        costs = LifeguardCostModel()
        result = LBASystem(costs=costs).timesliced(prog)
        assert result.extras["errors"] == 1
        assert result.lifeguard_cycles >= costs.error_handling_cycles

    def test_nops_never_dispatch(self):
        threads = [ThreadTrace([Instr.nop()] * 100)]
        prog = TraceProgram(threads, true_order=[(0, i) for i in range(100)])
        result = LBASystem().timesliced(prog)
        assert result.lifeguard_cycles == 0

    def test_falls_back_to_round_robin_without_orders(self):
        prog = TraceProgram(
            [ThreadTrace([Instr.nop()] * 4), ThreadTrace([Instr.nop()] * 4)]
        )
        result = LBASystem().timesliced(prog)
        assert result.cycles > 0


class TestCostModelKnobs:
    def test_error_cost_moves_butterfly_time(self):
        prog = get_benchmark("OCEAN").generate(2, 6144, seed=9)
        cheap = LBASystem(costs=LifeguardCostModel(error_handling_cycles=0))
        dear = LBASystem(costs=LifeguardCostModel(error_handling_cycles=5000))
        t_cheap = cheap.butterfly(prog, 2048).result.lifeguard_cycles
        t_dear = dear.butterfly(prog, 2048).result.lifeguard_cycles
        assert t_dear > t_cheap

    def test_barrier_cost_scales_with_epochs(self):
        prog = get_benchmark("LU").generate(2, 6144, seed=9)
        system = LBASystem(costs=LifeguardCostModel(epoch_barrier_cycles=10_000))
        many = system.butterfly(prog, 256)
        system2 = LBASystem(costs=LifeguardCostModel(epoch_barrier_cycles=10_000))
        few = system2.butterfly(prog, 2048)
        assert many.result.lifeguard_cycles > few.result.lifeguard_cycles
