"""Round-trip and property tests for the LBA log-record format."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.errors import SimulationError
from repro.sim.config import MachineConfig
from repro.sim.logformat import (
    MAX_LOCATION,
    RECORD_BYTES,
    decode,
    decode_block,
    encode,
    encode_block,
)
from repro.trace.events import Instr, Op


SAMPLES = [
    Instr.nop(),
    Instr.read(0),
    Instr.write(MAX_LOCATION),
    Instr.malloc(100, 255),
    Instr.free(0, 2),
    Instr.assign(1, 2, 3),
    Instr.assign(1, 2),
    Instr.assign(1),
    Instr.taint(42),
    Instr.untaint(42),
    Instr.jump(7),
]


class TestRoundTrip:
    @pytest.mark.parametrize("instr", SAMPLES, ids=lambda i: i.op.value)
    def test_each_op(self, instr):
        assert decode(encode(instr)) == instr

    def test_record_size_matches_machine_config(self):
        assert RECORD_BYTES == MachineConfig().log_record_bytes
        assert len(encode(Instr.nop())) == RECORD_BYTES

    def test_block_round_trip(self):
        data = encode_block(SAMPLES)
        assert decode_block(data) == SAMPLES

    @given(
        op=st.sampled_from([Op.READ, Op.WRITE, Op.JUMP]),
        loc=st.integers(0, MAX_LOCATION),
    )
    def test_single_location_ops(self, op, loc):
        if op in (Op.READ, Op.JUMP):
            instr = Instr(op, srcs=(loc,))
        else:
            instr = Instr(op, dst=loc)
        assert decode(encode(instr)) == instr

    @given(
        base=st.integers(0, MAX_LOCATION - 255),
        size=st.integers(1, 255),
    )
    def test_extents(self, base, size):
        instr = Instr.malloc(base, size)
        assert decode(encode(instr)) == instr


class TestValidation:
    def test_oversized_location_rejected(self):
        with pytest.raises(SimulationError):
            encode(Instr.write(2**32))

    def test_oversized_extent_rejected(self):
        with pytest.raises(SimulationError):
            encode(Instr.malloc(0, 256))

    def test_wrong_record_length(self):
        with pytest.raises(SimulationError):
            decode(b"\x00" * 15)

    def test_unaligned_segment(self):
        with pytest.raises(SimulationError):
            decode_block(b"\x00" * 17)

    def test_unknown_opcode(self):
        bad = b"\xff" + encode(Instr.nop())[1:]
        with pytest.raises(SimulationError):
            decode(bad)
