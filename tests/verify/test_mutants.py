"""Mutant drills: the fuzzer must catch a deliberately reverted bugfix.

A fuzzer that has never failed proves nothing.  These tests revert one
shipped bugfix (or plant a known-unsound optimization) via
``repro.verify.mutants`` and assert the campaign finds the bug *and*
shrinks it to a tiny repro -- the subsystem's acceptance drill.
"""

import os

import pytest

from repro.verify import (
    AdversarialCaseGenerator,
    DifferentialHarness,
    apply_mutant,
    load_repro,
    run_fuzz,
)


class TestResumeReplayMutant:
    """Reverting the resume event-log dedup fix must be caught."""

    def test_fuzzer_finds_and_shrinks_the_reverted_bugfix(self, tmp_path):
        report = run_fuzz(
            seed=4,
            trials=4,
            failures_dir=str(tmp_path),
            mutant="resume-replay",
        )
        assert not report.ok
        finding = report.findings[0]
        assert finding.mode == "resume"
        # The acceptance bar: the shrunk repro is tiny.
        assert finding.shrunk_instructions <= 8
        assert os.path.exists(finding.artifact)
        case, mode, detail = load_repro(finding.artifact)
        assert mode == "resume"
        assert "run.attach" in detail or "event log" in detail

    def test_artifact_replays_the_disagreement_under_the_mutant(
        self, tmp_path
    ):
        report = run_fuzz(
            seed=4,
            trials=2,
            failures_dir=str(tmp_path),
            mutant="resume-replay",
        )
        case, mode, _ = load_repro(report.findings[0].artifact)
        harness = DifferentialHarness()
        # Fixed code: the minimal repro agrees again.
        assert harness.check(case, mode) is None
        # Mutant active: the same artifact still disagrees.
        with apply_mutant("resume-replay"):
            assert harness.check(case, mode) is not None


class TestNarrowWindowMutant:
    """Stripping future wings violates zero-false-negatives; the
    all-orderings oracle must notice."""

    def test_orderings_oracle_catches_the_narrowed_window(self, tmp_path):
        report = run_fuzz(
            seed=4,
            trials=30,
            modes=("orderings",),
            failures_dir=str(tmp_path),
            mutant="narrow-window",
        )
        assert not report.ok
        finding = report.findings[0]
        assert finding.mode == "orderings"
        assert finding.shrunk_instructions <= 8
        assert "missed an error" in finding.detail


class TestRegistry:
    def test_unknown_mutant_rejected(self):
        with pytest.raises(ValueError, match="unknown mutant"):
            apply_mutant("no-such-mutant")

    def test_mutants_restore_patched_attributes(self):
        from repro.core.framework import ButterflyEngine
        from repro.resilience.checkpoint import Checkpoint

        attach = ButterflyEngine.attach
        restore = Checkpoint.restore_into
        with apply_mutant("resume-replay"):
            assert ButterflyEngine.attach is not attach
        assert ButterflyEngine.attach is attach
        assert Checkpoint.restore_into is restore

    def test_clean_code_passes_the_mutant_free_campaign(self, tmp_path):
        gen = AdversarialCaseGenerator(4)
        harness = DifferentialHarness()
        for i in range(6):
            assert harness.run_case(gen.case(i)) == []
