"""Unit tests for the adversarial case generator."""

import pytest

from repro.verify.generator import (
    FAMILIES,
    AdversarialCaseGenerator,
    TraceCase,
)


class TestDeterminism:
    def test_case_is_pure_in_seed_and_index(self):
        a = AdversarialCaseGenerator(7)
        b = AdversarialCaseGenerator(7)
        for i in range(12):
            assert a.case(i).to_json() == b.case(i).to_json()

    def test_out_of_order_generation_matches(self):
        gen = AdversarialCaseGenerator(3)
        later = gen.case(9)
        gen.case(0)
        assert gen.case(9).to_json() == later.to_json()

    def test_different_seeds_differ(self):
        a = [AdversarialCaseGenerator(1).case(i).to_json() for i in range(6)]
        b = [AdversarialCaseGenerator(2).case(i).to_json() for i in range(6)]
        assert a != b


class TestFamilies:
    def test_one_rotation_covers_every_family(self):
        gen = AdversarialCaseGenerator(5)
        labels = {gen.case(i).label for i in range(len(FAMILIES))}
        assert labels == set(FAMILIES)

    def test_empty_threads_family_has_an_empty_thread(self):
        gen = AdversarialCaseGenerator(11)
        for i in range(30):
            case = gen.case(i)
            if case.label == "empty_threads":
                assert any(len(t) == 0 for t in case.threads)

    def test_single_instruction_blocks_hold_at_most_one(self):
        gen = AdversarialCaseGenerator(11)
        for i in range(30):
            case = gen.case(i)
            if case.label != "single_instruction":
                continue
            for cuts in case.boundaries:
                prev = 0
                for cut in cuts:
                    assert cut - prev <= 1
                    prev = cut


class TestCaseValidity:
    def test_partitions_build_for_many_cases(self):
        gen = AdversarialCaseGenerator(13)
        for i in range(40):
            case = gen.case(i)
            part = case.partition()
            assert part.num_epochs == case.num_epochs
            assert part.num_threads == case.num_threads
            assert case.total_instructions == sum(
                len(t) for t in case.threads
            )

    def test_json_round_trip(self):
        gen = AdversarialCaseGenerator(17)
        for i in range(12):
            case = gen.case(i)
            back = TraceCase.from_json(case.to_json())
            assert back == case

    def test_with_threads_preserves_identity_fields(self):
        case = AdversarialCaseGenerator(19).case(0)
        edited = case.with_threads(
            [list(t) for t in case.threads],
            [list(b) for b in case.boundaries],
        )
        assert edited == case
