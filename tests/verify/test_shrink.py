"""Unit tests for the delta-debugging shrinker and repro artifacts."""

import pytest

from repro.trace.events import Instr, Op
from repro.verify.generator import TraceCase
from repro.verify.shrink import load_repro, shrink_case, write_repro


def _case(threads, boundaries):
    return TraceCase(
        seed=42,
        label="handmade",
        lifeguard="addrcheck",
        threads=tuple(tuple(t) for t in threads),
        boundaries=tuple(tuple(b) for b in boundaries),
    )


def _has_free_of(case, loc):
    return any(
        i.op is Op.FREE and i.dst == loc for t in case.threads for i in t
    )


class TestShrink:
    def test_reduces_to_the_single_relevant_instruction(self):
        case = _case(
            [
                [Instr.write(0), Instr.free(5), Instr.read(1)],
                [Instr.write(2), Instr.write(3)],
                [Instr.read(4)],
            ],
            [[1, 3], [1, 2], [0, 1]],
        )
        shrunk = shrink_case(case, lambda c: _has_free_of(c, 5))
        assert _has_free_of(shrunk, 5)
        assert shrunk.total_instructions == 1
        assert shrunk.num_threads == 1

    def test_result_is_locally_minimal(self):
        # Predicate needs BOTH the free and the read of loc 5, so the
        # minimum is exactly two instructions.
        case = _case(
            [
                [Instr.free(5), Instr.write(1), Instr.write(2)],
                [Instr.read(5), Instr.write(3)],
            ],
            [[2, 3], [1, 2]],
        )

        def predicate(c):
            instrs = [i for t in c.threads for i in t]
            return any(
                i.op is Op.FREE and i.dst == 5 for i in instrs
            ) and any(i.op is Op.READ and 5 in i.srcs for i in instrs)

        shrunk = shrink_case(case, predicate)
        assert shrunk.total_instructions == 2

    def test_crashing_predicate_counts_as_not_failing(self):
        case = _case([[Instr.write(0), Instr.write(1)]], [[2]])

        def predicate(c):
            if c.total_instructions < 2:
                raise RuntimeError("checker blew up")
            return True

        shrunk = shrink_case(case, predicate)
        assert shrunk.total_instructions == 2

    def test_boundaries_stay_consistent_after_shrinking(self):
        case = _case(
            [
                [Instr.write(0), Instr.write(1), Instr.write(2)],
                [Instr.read(0), Instr.read(1)],
            ],
            [[1, 2, 3], [0, 1, 2]],
        )
        shrunk = shrink_case(case, lambda c: c.total_instructions >= 1)
        part = shrunk.partition()  # must not raise
        assert part.num_epochs == shrunk.num_epochs


class TestArtifacts:
    def test_write_then_load_round_trip(self, tmp_path):
        case = _case([[Instr.free(5)]], [[1]])
        path = write_repro(
            case, "optref", "diverged", directory=str(tmp_path), trial=3
        )
        assert path.endswith("optref-seed42-trial3.json")
        loaded, mode, detail = load_repro(path)
        assert loaded == case
        assert mode == "optref"
        assert detail == "diverged"

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="repro-failure"):
            load_repro(str(path))

    def test_no_temp_file_left_behind(self, tmp_path):
        case = _case([[Instr.write(0)]], [[1]])
        path = write_repro(case, "resume", "x", directory=str(tmp_path))
        assert not any(p.suffix == ".tmp" for p in tmp_path.iterdir())
        assert path
