"""The differential harness agrees with itself on the shipped code."""

import pytest

from repro.trace.events import Instr
from repro.verify.generator import AdversarialCaseGenerator, TraceCase
from repro.verify.harness import MODE_NAMES, DifferentialHarness


def _case(threads, boundaries, lifeguard="addrcheck", prealloc=()):
    return TraceCase(
        seed=0,
        label="handmade",
        lifeguard=lifeguard,
        threads=tuple(tuple(t) for t in threads),
        boundaries=tuple(tuple(b) for b in boundaries),
        preallocated=frozenset(prealloc),
    )


class TestCleanAgreement:
    def test_generated_cases_agree_across_all_modes(self):
        harness = DifferentialHarness()
        gen = AdversarialCaseGenerator(23)
        for i in range(18):
            disagreements = harness.run_case(gen.case(i))
            assert disagreements == [], disagreements
        # Every mode actually exercised at least once.
        for mode in MODE_NAMES:
            assert harness.checks_run[mode] > 0

    def test_page_straddling_free_then_malloc(self):
        # The minimal shape that exposed the reference AddrCheck's
        # hash-order isolation reports: two-location extents racing
        # across threads.
        case = _case(
            [[Instr.free(15, 2)], [Instr.malloc(15, 2)]],
            [[1], [1]],
            prealloc=(15, 16),
        )
        harness = DifferentialHarness()
        assert harness.run_case(case) == []


class TestStreamMode:
    def test_stream_checks_every_case(self):
        # stream-vs-materialized applies to every case (no skip
        # condition): the round-trip through a version 2 file plus the
        # bounded-window feed must be invisible in all outputs.
        harness = DifferentialHarness(modes=("stream",))
        gen = AdversarialCaseGenerator(5)
        for i in range(10):
            assert harness.run_case(gen.case(i)) == []
        assert harness.checks_run["stream"] == 10
        assert harness.skipped["stream"] == 0

    def test_stream_covers_both_lifeguards(self):
        harness = DifferentialHarness(modes=("stream",))
        for lifeguard in ("addrcheck", "taintcheck"):
            case = _case(
                [[Instr.write(0), Instr.read(0)], [Instr.read(0)]],
                [[1, 2], [1, 1]],
                lifeguard=lifeguard,
            )
            assert harness.run_case(case) == []


class TestApplicability:
    def test_orderings_skips_over_budget_cases(self):
        harness = DifferentialHarness(oracle_budget=2)
        case = _case(
            [[Instr.write(0)] * 3, [Instr.read(0)]],
            [[3], [1]],
        )
        assert harness.check(case, "orderings") is None
        assert harness.skipped["orderings"] == 1
        assert harness.checks_run["orderings"] == 0

    def test_resume_skips_single_epoch_cases(self):
        harness = DifferentialHarness()
        case = _case([[Instr.write(0)]], [[1]])
        assert harness.check(case, "resume") is None
        assert harness.skipped["resume"] == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            DifferentialHarness(modes=("orderings", "nonsense"))


class TestColumnarMode:
    def test_columnar_checks_every_case(self):
        # columnar-vs-object applies unconditionally: running the same
        # case from columnar-backed blocks (vector kernels engaged where
        # available) must be invisible in every output.
        harness = DifferentialHarness(modes=("columnar",))
        gen = AdversarialCaseGenerator(29)
        for i in range(10):
            assert harness.run_case(gen.case(i)) == []
        assert harness.checks_run["columnar"] == 10
        assert harness.skipped["columnar"] == 0

    def test_columnar_covers_all_lifeguards(self):
        harness = DifferentialHarness(modes=("columnar",))
        for lifeguard in ("addrcheck", "taintcheck", "racecheck"):
            case = _case(
                [[Instr.write(0), Instr.read(0)], [Instr.read(0)]],
                [[1, 2], [1, 1]],
                lifeguard=lifeguard,
            )
            assert harness.run_case(case) == []

    def test_columnar_threads_backend(self):
        harness = DifferentialHarness(modes=("columnar",), backend="threads")
        gen = AdversarialCaseGenerator(31)
        for i in range(5):
            assert harness.run_case(gen.case(i)) == []
