"""Exit-code and plumbing tests for ``repro fuzz``."""

import json
import os

from repro.cli import main


class TestExitCodes:
    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        rc = main([
            "fuzz", "--seed", "4", "--trials", "8",
            "--failures-dir", str(tmp_path / "failures"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all mode pairs agreed" in out
        assert not os.path.exists(tmp_path / "failures")

    def test_mutant_campaign_exits_one_and_writes_artifacts(
        self, tmp_path, capsys
    ):
        failures = tmp_path / "failures"
        rc = main([
            "fuzz", "--seed", "4", "--trials", "3",
            "--mutant", "resume-replay",
            "--failures-dir", str(failures),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "disagreement" in out
        assert list(failures.glob("resume-seed4-trial*.json"))

    def test_bad_budget_exits_two(self, capsys):
        rc = main(["fuzz", "--budget-seconds", "0"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "--budget-seconds" in err

    def test_bad_trials_exits_two(self, capsys):
        rc = main(["fuzz", "--trials", "0"])
        assert rc == 2


class TestPlumbing:
    def test_emit_events_writes_provenance_log(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        rc = main([
            "fuzz", "--seed", "4", "--trials", "5",
            "--failures-dir", str(tmp_path / "failures"),
            "--emit-events", str(events_path),
        ])
        assert rc == 0
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        trials = [e for e in events if e["ev"] == "verify.trial"]
        assert len(trials) == 5
        assert events[-1]["ev"] == "verify.campaign"
        assert events[-1]["disagreements"] == 0

    def test_mode_subset_only_runs_those_modes(self, tmp_path, capsys):
        rc = main([
            "fuzz", "--seed", "4", "--trials", "4",
            "--modes", "optref", "backends",
            "--failures-dir", str(tmp_path / "failures"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optref" in out
        assert "orderings" not in out

    def test_budget_seconds_bounds_the_campaign(self, tmp_path, capsys):
        rc = main([
            "fuzz", "--seed", "4", "--budget-seconds", "0.5",
            "--failures-dir", str(tmp_path / "failures"),
        ])
        assert rc == 0
        assert "trials" in capsys.readouterr().out
