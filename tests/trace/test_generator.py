"""Unit tests for random trace generation."""

import random

from repro.lifeguards.sequential import SequentialAddrCheck
from repro.trace.events import Op
from repro.trace.generator import (
    random_program,
    simulated_alloc_program,
    simulated_taint_program,
)


class TestRandomProgram:
    def test_shape(self):
        prog = random_program(random.Random(0), num_threads=3, length=5)
        assert prog.num_threads == 3
        assert all(len(t) == 5 for t in prog.threads)

    def test_respects_op_menu(self):
        prog = random_program(
            random.Random(0), length=50, ops=(Op.NOP,)
        )
        assert all(
            i.op is Op.NOP for t in prog.threads for i in t
        )


class TestSimulatedAllocProgram:
    def test_clean_run_has_no_true_errors(self):
        for seed in range(10):
            prog = simulated_alloc_program(
                random.Random(seed), num_threads=3, total_events=60
            )
            guard = SequentialAddrCheck()
            guard.run_order(prog)
            assert len(guard.errors) == 0, seed

    def test_injected_errors_are_detected(self):
        found_any = False
        for seed in range(10):
            prog = simulated_alloc_program(
                random.Random(seed),
                num_threads=2,
                total_events=80,
                inject_error_rate=0.2,
            )
            guard = SequentialAddrCheck()
            guard.run_order(prog)
            found_any = found_any or len(guard.errors) > 0
        assert found_any

    def test_true_order_valid(self):
        prog = simulated_alloc_program(random.Random(3), total_events=40)
        prog.validate()
        assert len(prog.true_order) == prog.total_instructions


class TestSimulatedTaintProgram:
    def test_structure(self):
        prog = simulated_taint_program(
            random.Random(1), num_threads=2, total_events=30
        )
        prog.validate()
        assert prog.total_instructions == 30

    def test_contains_taint_events(self):
        prog = simulated_taint_program(
            random.Random(2), total_events=200, taint_rate=0.3
        )
        ops = {i.op for t in prog.threads for i in t}
        assert Op.TAINT in ops


class TestColumnarAllocSource:
    def _source(self, **kw):
        from repro.trace.generator import ColumnarAllocSource

        params = dict(seed=13, num_threads=2, num_epochs=3,
                      events_per_block=64, num_locations=16,
                      change_period=8)
        params.update(kw)
        return ColumnarAllocSource(**params)

    def test_shape_and_totals(self):
        src = self._source()
        assert src.num_threads == 2
        assert src.num_epochs == 3
        assert src.total_events == 2 * 3 * 64
        assert src.preallocated == frozenset(range(16))
        rows = list(src.epochs())
        assert len(rows) == 3
        for lid, row in enumerate(rows):
            assert [b.tid for b in row] == [0, 1]
            for block in row:
                assert block.lid == lid
                assert block.has_columns
                assert len(block) == 64

    def test_deterministic_and_resumable(self):
        """Block (l, t) is a pure function of (seed, l, t): a fresh
        iteration and a mid-stream resume regenerate identical blocks."""
        a = list(self._source().epochs())
        b = list(self._source().epochs())
        assert a == b
        resumed = list(self._source().epochs(start=2))
        assert resumed == a[2:]

    def test_different_seeds_differ(self):
        a = list(self._source(seed=1).epochs())
        b = list(self._source(seed=2).epochs())
        assert a != b

    def test_events_are_legal_by_construction(self):
        """Sequential replay over any single thread's trace sees only
        accesses to preallocated locations plus a correctly alternating
        MALLOC/FREE of the thread's private scratch slot."""
        from repro.trace.events import Op as _Op

        src = self._source()
        scratch_states = {}
        for row in src.epochs():
            for block in row:
                scratch = 16 + block.tid
                for instr in block.instrs:
                    if instr.op in (_Op.MALLOC, _Op.FREE):
                        assert instr.dst == scratch
                        prev = scratch_states.get(block.tid, False)
                        assert (instr.op is _Op.MALLOC) == (not prev)
                        scratch_states[block.tid] = not prev
                    elif instr.op is _Op.WRITE:
                        assert 0 <= instr.dst < 16
                    else:
                        assert instr.op is _Op.READ
                        assert 0 <= instr.srcs[0] < 16

    def test_error_rate_targets_unallocated_location(self):
        src = self._source(error_rate=0.2)
        bad = 16 + 2  # num_locations + num_threads
        hits = 0
        for row in src.epochs():
            for block in row:
                for instr in block.instrs:
                    if instr.dst == bad or bad in instr.srcs:
                        hits += 1
        assert hits > 0

    def test_as_objects_is_same_trace(self):
        src = self._source()
        obj_rows = list(src.as_objects().epochs())
        col_rows = list(src.epochs())
        assert obj_rows == col_rows
        for row in obj_rows:
            for block in row:
                assert not block.has_columns

    def test_zero_errors_without_injection(self):
        """The default workload is error-free under butterfly AddrCheck
        (so bench errors==0 is a correctness signal, not luck)."""
        from repro.core.framework import ButterflyEngine
        from repro.lifeguards.addrcheck import ButterflyAddrCheck

        src = self._source()
        guard = ButterflyAddrCheck(initially_allocated=src.preallocated)
        with ButterflyEngine(guard, backend="serial") as engine:
            engine.run_source(src)
        assert len(guard.errors) == 0

    def test_bad_shapes_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            self._source(events_per_block=0)
        with _pytest.raises(ValueError):
            self._source(change_period=1)
