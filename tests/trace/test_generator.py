"""Unit tests for random trace generation."""

import random

from repro.lifeguards.sequential import SequentialAddrCheck
from repro.trace.events import Op
from repro.trace.generator import (
    random_program,
    simulated_alloc_program,
    simulated_taint_program,
)


class TestRandomProgram:
    def test_shape(self):
        prog = random_program(random.Random(0), num_threads=3, length=5)
        assert prog.num_threads == 3
        assert all(len(t) == 5 for t in prog.threads)

    def test_respects_op_menu(self):
        prog = random_program(
            random.Random(0), length=50, ops=(Op.NOP,)
        )
        assert all(
            i.op is Op.NOP for t in prog.threads for i in t
        )


class TestSimulatedAllocProgram:
    def test_clean_run_has_no_true_errors(self):
        for seed in range(10):
            prog = simulated_alloc_program(
                random.Random(seed), num_threads=3, total_events=60
            )
            guard = SequentialAddrCheck()
            guard.run_order(prog)
            assert len(guard.errors) == 0, seed

    def test_injected_errors_are_detected(self):
        found_any = False
        for seed in range(10):
            prog = simulated_alloc_program(
                random.Random(seed),
                num_threads=2,
                total_events=80,
                inject_error_rate=0.2,
            )
            guard = SequentialAddrCheck()
            guard.run_order(prog)
            found_any = found_any or len(guard.errors) > 0
        assert found_any

    def test_true_order_valid(self):
        prog = simulated_alloc_program(random.Random(3), total_events=40)
        prog.validate()
        assert len(prog.true_order) == prog.total_instructions


class TestSimulatedTaintProgram:
    def test_structure(self):
        prog = simulated_taint_program(
            random.Random(1), num_threads=2, total_events=30
        )
        prog.validate()
        assert prog.total_instructions == 30

    def test_contains_taint_events(self):
        prog = simulated_taint_program(
            random.Random(2), total_events=200, taint_rate=0.3
        )
        ops = {i.op for t in prog.threads for i in t}
        assert Op.TAINT in ops
