"""Coverage for small event-stream helpers."""

from repro.trace.events import Instr, expand_locations


def test_expand_locations_streams_all_touched():
    instrs = [
        Instr.malloc(10, 2),
        Instr.assign(1, 2, 3),
        Instr.nop(),
        Instr.read(7),
    ]
    locs = list(expand_locations(iter(instrs)))
    assert locs == [10, 11, 2, 3, 1, 7]


def test_expand_locations_empty():
    assert list(expand_locations(iter([]))) == []
