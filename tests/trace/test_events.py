"""Unit tests for the event vocabulary."""

import pytest

from repro.trace.events import Instr, Op


class TestConstructors:
    def test_read(self):
        instr = Instr.read(5)
        assert instr.op is Op.READ
        assert instr.srcs == (5,)
        assert instr.dst is None

    def test_write(self):
        instr = Instr.write(7)
        assert instr.op is Op.WRITE
        assert instr.dst == 7

    def test_malloc_extent(self):
        instr = Instr.malloc(10, 4)
        assert instr.extent == (10, 11, 12, 13)

    def test_free_extent(self):
        instr = Instr.free(3, 2)
        assert instr.extent == (3, 4)

    def test_assign_unop(self):
        instr = Instr.assign(1, 2)
        assert instr.op is Op.ASSIGN
        assert instr.srcs == (2,)
        assert instr.dst == 1

    def test_assign_binop(self):
        instr = Instr.assign(1, 2, 3)
        assert instr.srcs == (2, 3)

    def test_assign_const(self):
        # x := constant is an ASSIGN with no sources (untaints x).
        instr = Instr.assign(1)
        assert instr.srcs == ()

    def test_taint_untaint(self):
        assert Instr.taint(4).dst == 4
        assert Instr.untaint(4).dst == 4

    def test_jump(self):
        instr = Instr.jump(9)
        assert instr.srcs == (9,)

    def test_nop(self):
        instr = Instr.nop()
        assert instr.locations == ()
        assert not instr.is_memory_op


class TestValidation:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Instr(Op.MALLOC, dst=0, size=0)

    def test_write_requires_dst(self):
        with pytest.raises(ValueError):
            Instr(Op.WRITE)

    def test_read_requires_one_src(self):
        with pytest.raises(ValueError):
            Instr(Op.READ, srcs=(1, 2))

    def test_assign_max_two_sources(self):
        with pytest.raises(ValueError):
            Instr(Op.ASSIGN, dst=0, srcs=(1, 2, 3))


class TestDerivedViews:
    def test_read_accessed(self):
        assert Instr.read(5).accessed == (5,)

    def test_write_accessed(self):
        assert Instr.write(5).accessed == (5,)

    def test_assign_accesses_sources_and_dst(self):
        assert set(Instr.assign(1, 2, 3).accessed) == {1, 2, 3}

    def test_jump_accesses_target_location(self):
        assert Instr.jump(4).accessed == (4,)

    def test_malloc_is_not_an_access(self):
        # Allocation-state changes are not dereferences.
        assert Instr.malloc(0, 8).accessed == ()
        assert not Instr.malloc(0, 8).is_memory_op

    def test_malloc_locations_cover_extent(self):
        assert Instr.malloc(2, 3).locations == (2, 3, 4)

    def test_extent_of_plain_write_is_dst(self):
        assert Instr.write(5).extent == (5,)

    def test_frozen(self):
        instr = Instr.read(1)
        with pytest.raises(Exception):
            instr.op = Op.WRITE
