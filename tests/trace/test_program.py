"""Unit tests for TraceProgram / ThreadTrace."""

import pytest

from repro.errors import TraceError
from repro.trace.events import Instr
from repro.trace.program import ThreadTrace, TraceProgram


def make_program():
    return TraceProgram.from_lists(
        [Instr.write(0), Instr.read(0)],
        [Instr.malloc(1), Instr.free(1)],
    )


class TestShape:
    def test_num_threads(self):
        assert make_program().num_threads == 2

    def test_total_instructions(self):
        assert make_program().total_instructions == 4

    def test_memory_op_count_excludes_alloc_events(self):
        # malloc/free are not accesses; write/read are.
        assert make_program().memory_op_count == 2

    def test_instr_at(self):
        prog = make_program()
        assert prog.instr_at((1, 0)).op.value == "malloc"

    def test_thread_trace_iteration(self):
        trace = ThreadTrace([Instr.nop(), Instr.nop()])
        assert len(trace) == 2
        assert all(i.op.value == "nop" for i in trace)

    def test_thread_trace_append_extend(self):
        trace = ThreadTrace()
        trace.append(Instr.nop())
        trace.extend([Instr.read(1)])
        assert len(trace) == 2
        assert trace[1].op.value == "read"


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(TraceError):
            TraceProgram([]).validate()

    def test_valid_true_order(self):
        prog = make_program()
        prog.true_order = [(0, 0), (1, 0), (0, 1), (1, 1)]
        prog.validate()

    def test_true_order_must_respect_program_order(self):
        prog = make_program()
        prog.true_order = [(0, 1), (0, 0), (1, 0), (1, 1)]
        with pytest.raises(TraceError):
            prog.validate()

    def test_true_order_must_cover_trace(self):
        prog = make_program()
        prog.true_order = [(0, 0)]
        with pytest.raises(TraceError):
            prog.validate()

    def test_true_order_unknown_thread(self):
        prog = make_program()
        prog.true_order = [(5, 0)]
        with pytest.raises(TraceError):
            prog.validate()

    def test_timesliced_order_validated_too(self):
        prog = make_program()
        prog.true_order = [(0, 0), (1, 0), (0, 1), (1, 1)]
        prog.timesliced_order = [(0, 1)]
        with pytest.raises(TraceError):
            prog.validate()


class TestRecordedOrder:
    def test_missing_order_raises(self):
        with pytest.raises(TraceError):
            make_program().recorded_order()

    def test_iter_recorded(self):
        prog = make_program()
        prog.true_order = [(1, 0), (1, 1), (0, 0), (0, 1)]
        refs = [ref for ref, _ in prog.iter_recorded()]
        assert refs == prog.true_order
