"""Round-trip tests for trace persistence."""

import io
import random

import pytest

from repro.errors import TraceError
from repro.trace.events import Instr
from repro.trace.generator import simulated_alloc_program
from repro.trace.program import TraceProgram
from repro.trace.serialize import dump, load, load_file, save_file
from repro.workloads.registry import get_benchmark


def round_trip(program):
    buf = io.StringIO()
    dump(program, buf)
    buf.seek(0)
    return load(buf)


class TestRoundTrip:
    def test_simple_program(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0, 4), Instr.write(1), Instr.free(0, 4)],
            [Instr.assign(2, 3, 4), Instr.jump(2)],
        )
        loaded = round_trip(prog)
        assert loaded.num_threads == 2
        for a, b in zip(prog.threads, loaded.threads):
            assert a.instrs == b.instrs

    def test_orders_and_preallocated_preserved(self):
        prog = simulated_alloc_program(
            random.Random(0), num_threads=2, total_events=20
        )
        loaded = round_trip(prog)
        assert loaded.true_order == prog.true_order
        assert loaded.preallocated == prog.preallocated

    def test_workload_round_trip(self):
        prog = get_benchmark("OCEAN").generate(2, 3000, seed=4)
        loaded = round_trip(prog)
        assert loaded.timesliced_order == prog.timesliced_order
        assert loaded.total_instructions == prog.total_instructions
        assert loaded.preallocated == prog.preallocated

    def test_file_round_trip(self, tmp_path):
        prog = TraceProgram.from_lists([Instr.nop(), Instr.read(7)])
        path = tmp_path / "trace.jsonl"
        save_file(prog, path)
        loaded = load_file(path)
        assert loaded.threads[0].instrs == prog.threads[0].instrs


class TestValidation:
    def test_rejects_non_trace_file(self):
        buf = io.StringIO('{"format": "something-else"}\n')
        with pytest.raises(TraceError):
            load(buf)

    def test_rejects_future_version(self):
        buf = io.StringIO(
            '{"format": "repro-trace", "version": 99, "threads": 0}\n'
        )
        with pytest.raises(TraceError):
            load(buf)

    def test_rejects_malformed_instruction(self):
        buf = io.StringIO(
            '{"format": "repro-trace", "version": 1, "threads": 1}\n'
            '[["bogus-op"]]\n'
        )
        with pytest.raises(TraceError):
            load(buf)
