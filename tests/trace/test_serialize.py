"""Round-trip tests for trace persistence."""

import io
import random

import pytest

from repro.core.epoch import partition_auto
from repro.errors import TraceError
from repro.trace.events import Instr
from repro.trace.generator import simulated_alloc_program
from repro.trace.program import TraceProgram
from repro.trace.serialize import (
    dump,
    dump_stream,
    file_version,
    iter_load,
    load,
    load_file,
    save_file,
    save_stream_file,
    stream_epochs,
)
from repro.workloads.registry import get_benchmark


def round_trip(program):
    buf = io.StringIO()
    dump(program, buf)
    buf.seek(0)
    return load(buf)


class TestRoundTrip:
    def test_simple_program(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0, 4), Instr.write(1), Instr.free(0, 4)],
            [Instr.assign(2, 3, 4), Instr.jump(2)],
        )
        loaded = round_trip(prog)
        assert loaded.num_threads == 2
        for a, b in zip(prog.threads, loaded.threads):
            assert a.instrs == b.instrs

    def test_orders_and_preallocated_preserved(self):
        prog = simulated_alloc_program(
            random.Random(0), num_threads=2, total_events=20
        )
        loaded = round_trip(prog)
        assert loaded.true_order == prog.true_order
        assert loaded.preallocated == prog.preallocated

    def test_workload_round_trip(self):
        prog = get_benchmark("OCEAN").generate(2, 3000, seed=4)
        loaded = round_trip(prog)
        assert loaded.timesliced_order == prog.timesliced_order
        assert loaded.total_instructions == prog.total_instructions
        assert loaded.preallocated == prog.preallocated

    def test_file_round_trip(self, tmp_path):
        prog = TraceProgram.from_lists([Instr.nop(), Instr.read(7)])
        path = tmp_path / "trace.jsonl"
        save_file(prog, path)
        loaded = load_file(path)
        assert loaded.threads[0].instrs == prog.threads[0].instrs


class TestValidation:
    def test_rejects_non_trace_file(self):
        buf = io.StringIO('{"format": "something-else"}\n')
        with pytest.raises(TraceError):
            load(buf)

    def test_rejects_future_version(self):
        buf = io.StringIO(
            '{"format": "repro-trace", "version": 99, "threads": 0}\n'
        )
        with pytest.raises(TraceError):
            load(buf)

    def test_rejects_malformed_instruction(self):
        buf = io.StringIO(
            '{"format": "repro-trace", "version": 1, "threads": 1}\n'
            '[["bogus-op"]]\n'
        )
        with pytest.raises(TraceError):
            load(buf)

    def test_truncated_final_record_has_file_line_context(self):
        prog = TraceProgram.from_lists([Instr.nop(), Instr.read(7)])
        buf = io.StringIO()
        dump(prog, buf)
        # Chop the file mid-way through its final JSON record.
        truncated = io.StringIO(buf.getvalue()[:-10])
        with pytest.raises(TraceError, match=r"mytrace:\d+"):
            load(truncated, name="mytrace")

    def test_trailing_garbage_rejected_with_context(self):
        prog = TraceProgram.from_lists([Instr.nop(), Instr.read(7)])
        buf = io.StringIO()
        dump(prog, buf)
        polluted = io.StringIO(buf.getvalue() + '{"oops": 1}\n')
        with pytest.raises(
            TraceError, match=r"mytrace:\d+: trailing garbage"
        ):
            load(polluted, name="mytrace")

    def test_trailing_blank_lines_tolerated(self):
        prog = TraceProgram.from_lists([Instr.nop()])
        buf = io.StringIO()
        dump(prog, buf)
        padded = io.StringIO(buf.getvalue() + "\n  \n")
        assert load(padded).num_threads == 1


def stream_partition(threads=2, events=200, h=8, seed=0):
    prog = simulated_alloc_program(
        random.Random(seed), num_threads=threads, total_events=events
    )
    return prog, partition_auto(prog, h)


def stream_text(partition):
    buf = io.StringIO()
    dump_stream(partition, buf)
    return buf.getvalue()


class TestStreamRoundTrip:
    def test_blocks_round_trip_exactly(self):
        _, partition = stream_partition()
        text = stream_text(partition)
        rows = list(stream_epochs(io.StringIO(text)))
        assert len(rows) == partition.num_epochs
        for lid, row in enumerate(rows):
            for tid, block in enumerate(row):
                original = partition.block(lid, tid)
                assert block.block_id == (lid, tid)
                assert block.start == original.start
                assert block.instrs == original.instrs

    def test_file_source_shape_and_preallocated(self, tmp_path):
        prog, partition = stream_partition()
        path = tmp_path / "trace.stream.jsonl"
        save_stream_file(partition, path)
        source = iter_load(path)
        assert source.num_threads == partition.num_threads
        assert source.num_epochs == partition.num_epochs
        assert source.preallocated == frozenset(prog.preallocated)
        # The source is re-iterable (fresh handle per epochs() call).
        assert len(list(source.epochs())) == partition.num_epochs
        assert len(list(source.epochs())) == partition.num_epochs

    def test_seek_skips_processed_epochs(self, tmp_path):
        _, partition = stream_partition(events=400)
        path = tmp_path / "trace.stream.jsonl"
        save_stream_file(partition, path)
        rows = list(iter_load(path).epochs(start=3))
        assert rows[0][0].lid == 3
        assert rows[0][0].instrs == partition.block(3, 0).instrs
        assert len(rows) == partition.num_epochs - 3

    def test_file_version_distinguishes_layouts(self, tmp_path):
        prog, partition = stream_partition()
        v1 = tmp_path / "v1.jsonl"
        v2 = tmp_path / "v2.jsonl"
        save_file(prog, v1)
        save_stream_file(partition, v2)
        assert file_version(v1) == 1
        assert file_version(v2) == 2
        with pytest.raises(TraceError):
            file_version(__file__)


class TestStreamValidation:
    def test_missing_footer_is_a_truncated_stream(self):
        _, partition = stream_partition()
        text = stream_text(partition)
        no_footer = "".join(text.splitlines(keepends=True)[:-1])
        with pytest.raises(TraceError, match=r"t:\d+.*footer"):
            list(stream_epochs(io.StringIO(no_footer), name="t"))

    def test_truncated_epoch_record(self):
        _, partition = stream_partition()
        lines = stream_text(partition).splitlines(keepends=True)
        chopped = "".join(lines[:2]) + lines[2][:-20]
        with pytest.raises(TraceError, match=r"t:\d+: invalid JSON"):
            list(stream_epochs(io.StringIO(chopped), name="t"))

    def test_out_of_order_epoch_records(self):
        _, partition = stream_partition()
        lines = stream_text(partition).splitlines(keepends=True)
        swapped = lines[0] + lines[2] + lines[1] + "".join(lines[3:])
        with pytest.raises(TraceError, match="in order"):
            list(stream_epochs(io.StringIO(swapped), name="t"))

    def test_trailing_garbage_after_footer(self):
        _, partition = stream_partition()
        polluted = stream_text(partition) + '{"oops": 1}\n'
        with pytest.raises(TraceError, match="trailing garbage"):
            list(stream_epochs(io.StringIO(polluted), name="t"))

    def test_v1_reader_refuses_v2_and_vice_versa(self):
        prog, partition = stream_partition()
        with pytest.raises(TraceError, match="unsupported trace version"):
            load(io.StringIO(stream_text(partition)))
        v1 = io.StringIO()
        dump(prog, v1)
        v1.seek(0)
        with pytest.raises(TraceError, match="not a stream trace"):
            list(stream_epochs(v1))

    def test_seek_past_the_end_rejected(self, tmp_path):
        _, partition = stream_partition()
        path = tmp_path / "trace.stream.jsonl"
        save_stream_file(partition, path)
        with pytest.raises(TraceError, match="cannot seek"):
            list(iter_load(path).epochs(start=partition.num_epochs + 1))

    def test_wrong_footer_count(self):
        _, partition = stream_partition()
        lines = stream_text(partition).splitlines(keepends=True)
        bad = "".join(lines[:-1]) + '{"epochs_written": 1}\n'
        with pytest.raises(TraceError, match="bad footer"):
            list(stream_epochs(io.StringIO(bad), name="t"))

