"""Unit tests for serializations and interleaving oracles."""

import random

import pytest

from repro.trace.events import Instr
from repro.trace.interleave import (
    all_interleavings,
    count_interleavings,
    is_valid_sc_order,
    random_interleave,
    relaxed_interleavings,
    relaxed_thread_orders,
    round_robin,
    serialize,
)
from repro.trace.program import TraceProgram


def two_by_two():
    return TraceProgram.from_lists(
        [Instr.write(0), Instr.write(1)],
        [Instr.read(0), Instr.read(1)],
    )


class TestRoundRobin:
    def test_quantum_one_alternates(self):
        order = round_robin(two_by_two(), quantum=1)
        assert order == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_large_quantum_serializes(self):
        order = round_robin(two_by_two(), quantum=10)
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_uneven_lengths(self):
        prog = TraceProgram.from_lists([Instr.nop()] * 3, [Instr.nop()])
        order = round_robin(prog, quantum=1)
        assert is_valid_sc_order(prog, order)

    def test_bad_quantum(self):
        with pytest.raises(ValueError):
            round_robin(two_by_two(), quantum=0)


class TestRandomInterleave:
    def test_is_valid(self):
        rng = random.Random(0)
        for _ in range(20):
            order = random_interleave(two_by_two(), rng)
            assert is_valid_sc_order(two_by_two(), order)

    def test_deterministic_given_seed(self):
        a = random_interleave(two_by_two(), random.Random(7))
        b = random_interleave(two_by_two(), random.Random(7))
        assert a == b


class TestAllInterleavings:
    def test_count_matches_multinomial(self):
        prog = two_by_two()
        orders = list(all_interleavings(prog))
        assert len(orders) == count_interleavings(prog) == 6

    def test_all_distinct_and_valid(self):
        prog = two_by_two()
        orders = [tuple(o) for o in all_interleavings(prog)]
        assert len(set(orders)) == len(orders)
        for order in orders:
            assert is_valid_sc_order(prog, list(order))

    def test_three_threads(self):
        prog = TraceProgram.from_lists(
            [Instr.nop()], [Instr.nop()], [Instr.nop()]
        )
        assert len(list(all_interleavings(prog))) == 6


class TestRelaxedOrders:
    def test_window_zero_is_program_order(self):
        trace = [Instr.write(0), Instr.write(1), Instr.write(2)]
        orders = list(relaxed_thread_orders(trace, window=0))
        assert orders == [[0, 1, 2]]

    def test_independent_ops_reorder(self):
        trace = [Instr.write(0), Instr.write(1)]
        orders = {tuple(o) for o in relaxed_thread_orders(trace, window=1)}
        assert orders == {(0, 1), (1, 0)}

    def test_dependent_ops_do_not_reorder(self):
        trace = [Instr.write(0), Instr.read(0)]
        orders = {tuple(o) for o in relaxed_thread_orders(trace, window=1)}
        assert orders == {(0, 1)}

    def test_relaxed_interleavings_superset_of_sc(self):
        prog = TraceProgram.from_lists(
            [Instr.write(0), Instr.write(1)],
            [Instr.read(2)],
        )
        sc = {tuple(o) for o in all_interleavings(prog)}
        relaxed = {tuple(o) for o in relaxed_interleavings(prog, window=1)}
        assert sc <= relaxed
        assert len(relaxed) > len(sc)


class TestRelaxedEdgeCases:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            list(relaxed_thread_orders([Instr.nop()], window=-1))

    def test_empty_trace_yields_one_empty_order(self):
        assert list(relaxed_thread_orders([], window=2)) == [[]]

    def test_relaxed_interleavings_with_empty_thread(self):
        prog = TraceProgram.from_lists(
            [Instr.write(0), Instr.write(1)], []
        )
        orders = [tuple(o) for o in relaxed_interleavings(prog, window=1)]
        assert len(orders) == len(set(orders))
        assert all(len(o) == 2 for o in orders)

    def test_relaxed_interleavings_of_empty_program(self):
        prog = TraceProgram.from_lists([])
        assert [list(o) for o in relaxed_interleavings(prog, window=1)] \
            == [[]]


class TestSerialize:
    def test_serialize_round_trip(self):
        prog = two_by_two()
        order = round_robin(prog, quantum=1)
        instrs = serialize(prog, order)
        assert [i.op.value for i in instrs] == ["write", "read", "write", "read"]


class TestIsValidScOrder:
    def test_rejects_duplicates(self):
        prog = two_by_two()
        assert not is_valid_sc_order(prog, [(0, 0), (0, 0), (1, 0), (1, 1)])

    def test_rejects_wrong_thread(self):
        prog = two_by_two()
        assert not is_valid_sc_order(prog, [(2, 0)])

    def test_rejects_incomplete(self):
        prog = two_by_two()
        assert not is_valid_sc_order(prog, [(0, 0), (0, 1)])
