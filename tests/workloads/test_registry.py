"""Registry and spec metadata tests."""

from repro.workloads.registry import BENCHMARKS, benchmark_table_rows


class TestBenchmarkTable:
    def test_rows_match_registry(self):
        rows = benchmark_table_rows()
        assert [r[0] for r in rows] == list(BENCHMARKS)

    def test_suites(self):
        rows = dict((r[0], r[1]) for r in benchmark_table_rows())
        splash = {k for k, v in rows.items() if v == "Splash-2"}
        assert splash == {"BARNES", "FFT", "FMM", "OCEAN", "LU"}
        assert rows["BLACKSCHOLES"] == "Parsec 2.0"


class TestSpecSanity:
    def test_fractions_in_range(self):
        for gen in BENCHMARKS.values():
            spec = gen.spec
            assert 0 < spec.mem_fraction < 1
            assert 0 <= spec.reuse <= 1
            assert 0 <= spec.sharing <= 1
            assert 0 <= spec.imbalance < 1

    def test_character_relationships(self):
        specs = {n: g.spec for n, g in BENCHMARKS.items()}
        # The Figure 11/13 story depends on these orderings.
        assert specs["BLACKSCHOLES"].mem_fraction == min(
            s.mem_fraction for s in specs.values()
        )
        assert specs["OCEAN"].sharing == max(
            s.sharing for s in specs.values()
        )
        for streaming in ("BARNES", "FMM"):
            assert specs[streaming].reuse < specs["LU"].reuse
