"""Unit tests for the workload-generation scaffolding."""

import random

import pytest

from repro.errors import WorkloadError
from repro.trace.events import Instr, Op
from repro.workloads.base import (
    PhasedTraceBuilder,
    StreamingWorkingSet,
    WorkloadSpec,
    compute_block,
    local_update,
    strided_reads,
    thread_region,
)


class TestPhasedTraceBuilder:
    def test_phase_preserves_program_order(self):
        b = PhasedTraceBuilder(2, random.Random(0))
        b.phase([[Instr.write(i) for i in range(5)],
                 [Instr.read(i) for i in range(5)]])
        prog = b.build()
        assert [i.dst for i in prog.threads[0]] == list(range(5))

    def test_barriers_order_phases_in_true_order(self):
        b = PhasedTraceBuilder(2, random.Random(0))
        b.phase([[Instr.write(1)], [Instr.write(2)]])
        b.phase([[Instr.write(3)], [Instr.write(4)]])
        prog = b.build()
        seen_phase2 = False
        for ref in prog.true_order:
            instr = prog.instr_at(ref)
            if instr.dst in (3, 4):
                seen_phase2 = True
            elif seen_phase2:
                pytest.fail("phase-1 event after phase-2 in true order")

    def test_serial_phase(self):
        b = PhasedTraceBuilder(3, random.Random(0))
        b.serial_phase(1, [Instr.write(9)])
        prog = b.build()
        assert len(prog.threads[1]) == 1
        assert len(prog.threads[0]) == 0

    def test_timesliced_order_runs_threads_in_blocks(self):
        b = PhasedTraceBuilder(2, random.Random(0))
        b.phase([[Instr.nop()] * 4, [Instr.nop()] * 4])
        prog = b.build()
        switches = sum(
            1
            for a, bb in zip(prog.timesliced_order, prog.timesliced_order[1:])
            if a[0] != bb[0]
        )
        assert switches == 1  # one switch per phase at two threads

    def test_wrong_phase_width_rejected(self):
        b = PhasedTraceBuilder(2, random.Random(0))
        with pytest.raises(WorkloadError):
            b.phase([[Instr.nop()]])

    def test_zero_threads_rejected(self):
        with pytest.raises(WorkloadError):
            PhasedTraceBuilder(0, random.Random(0))


class TestStreamingWorkingSet:
    def test_emits_exact_count(self):
        ws = StreamingWorkingSet(random.Random(0), 0, 100, 0.5, 1)
        assert len(ws.events(37)) == 37

    def test_respects_footprint(self):
        ws = StreamingWorkingSet(random.Random(0), 1000, 64, 0.3, 0)
        locs = {l for e in ws.events(500) for l in e.accessed}
        assert locs
        assert min(locs) >= 1000
        assert max(locs) < 1064

    def test_stream_continues_across_calls(self):
        ws = StreamingWorkingSet(random.Random(0), 0, 10_000, 0.0, 0)
        first = {l for e in ws.events(100) for l in e.accessed}
        second = {l for e in ws.events(100) for l in e.accessed}
        # Pure streaming never revisits until the footprint wraps.
        assert not (first & second)

    def test_reuse_one_stays_in_hot_set(self):
        ws = StreamingWorkingSet(random.Random(0), 0, 1000, 1.0, 0)
        locs = {l for e in ws.events(300) for l in e.accessed}
        assert max(locs) < ws.hot

    def test_compute_ratio(self):
        ws = StreamingWorkingSet(random.Random(0), 0, 100, 0.5, 3)
        events = ws.events(400)
        mem = sum(1 for e in events if e.accessed)
        assert mem == pytest.approx(100, rel=0.2)

    def test_tiny_footprint_rejected(self):
        with pytest.raises(WorkloadError):
            StreamingWorkingSet(random.Random(0), 0, 4, 0.5, 0)


class TestHelpers:
    def test_thread_regions_disjoint(self):
        assert thread_region(1) - thread_region(0) >= (1 << 20)

    def test_compute_block(self):
        assert all(i.op is Op.NOP for i in compute_block(random.Random(0), 5))

    def test_strided_reads(self):
        reads = strided_reads(10, 3, stride=2)
        assert [i.srcs[0] for i in reads] == [10, 12, 14]

    def test_local_update_wrapper(self):
        events = local_update(random.Random(0), 0, 100, 50, 0.5, 1)
        assert len(events) == 50

    def test_spec_is_frozen(self):
        spec = WorkloadSpec("X", "S", "i", 0.5, 0.5, 0.5, 0.1)
        with pytest.raises(Exception):
            spec.reuse = 0.9
