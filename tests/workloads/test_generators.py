"""Tests for the Splash-2/Parsec synthetic workload generators."""

import pytest

from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.reports import compare_reports
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.workloads.registry import BENCHMARKS, get_benchmark
from repro.errors import WorkloadError


ALL = sorted(BENCHMARKS)


class TestRegistry:
    def test_six_benchmarks(self):
        assert len(BENCHMARKS) == 6

    def test_table1_names(self):
        assert set(BENCHMARKS) == {
            "BARNES", "FFT", "FMM", "OCEAN", "BLACKSCHOLES", "LU"
        }

    def test_lookup_case_insensitive(self):
        assert get_benchmark("barnes").spec.name == "BARNES"

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            get_benchmark("SPECJBB")


class TestGeneratedTraces:
    @pytest.mark.parametrize("name", ALL)
    def test_structure_valid(self, name):
        prog = get_benchmark(name).generate(3, 3000, seed=7)
        prog.validate()
        assert prog.num_threads == 3
        assert prog.true_order is not None
        assert prog.timesliced_order is not None

    @pytest.mark.parametrize("name", ALL)
    def test_deterministic_for_seed(self, name):
        a = get_benchmark(name).generate(2, 2000, seed=5)
        b = get_benchmark(name).generate(2, 2000, seed=5)
        assert a.true_order == b.true_order
        assert all(
            x.instrs == y.instrs for x, y in zip(a.threads, b.threads)
        )

    @pytest.mark.parametrize("name", ALL)
    def test_recorded_execution_has_no_true_errors(self, name):
        """The generators simulate *correct* programs: the ground-truth
        interleaving must be AddrCheck-clean (so every butterfly flag in
        Figure 13 is a false positive)."""
        prog = get_benchmark(name).generate(4, 4000, seed=11)
        guard = SequentialAddrCheck(prog.preallocated)
        guard.run_order(prog)
        assert len(guard.errors) == 0

    @pytest.mark.parametrize("name", ALL)
    def test_timesliced_schedule_also_clean(self, name):
        """The recorded timesliced schedule is an alternative legal
        execution: it must be error-free too."""
        prog = get_benchmark(name).generate(4, 4000, seed=11)
        guard = SequentialAddrCheck(prog.preallocated)
        guard.run(
            (ref, prog.instr_at(ref)) for ref in prog.timesliced_order
        )
        assert len(guard.errors) == 0

    @pytest.mark.parametrize("name", ALL)
    def test_zero_false_negatives_on_generated_traces(self, name):
        prog = get_benchmark(name).generate(2, 3000, seed=3)
        part = partition_by_global_order(prog, 256)
        guard = ButterflyAddrCheck(initially_allocated=prog.preallocated)
        ButterflyEngine(guard).run(part)
        truth = SequentialAddrCheck(prog.preallocated)
        truth.run_order(prog)
        pr = compare_reports(truth.errors, guard.errors, prog.memory_op_count)
        assert pr.false_negatives == 0

    @pytest.mark.parametrize("name", ALL)
    def test_mem_fraction_roughly_matches_spec(self, name):
        gen = get_benchmark(name)
        prog = gen.generate(2, 6000, seed=2)
        frac = prog.memory_op_count / prog.total_instructions
        assert abs(frac - gen.spec.mem_fraction) < 0.25


class TestCharacterization:
    def test_blackscholes_is_compute_heavy(self):
        frac = {}
        for name in ("BLACKSCHOLES", "BARNES"):
            prog = get_benchmark(name).generate(2, 6000, seed=1)
            frac[name] = prog.memory_op_count / prog.total_instructions
        assert frac["BLACKSCHOLES"] < frac["BARNES"]

    def test_ocean_has_allocation_churn_and_lu_does_not(self):
        from repro.trace.events import Op

        ocean = get_benchmark("OCEAN").generate(2, 6000, seed=1)
        lu = get_benchmark("LU").generate(2, 6000, seed=1)
        count = lambda p: sum(
            1 for t in p.threads for i in t if i.op in (Op.MALLOC, Op.FREE)
        )
        assert count(ocean) > 0
        assert count(lu) == 0

    def test_sharing_spec_ordering(self):
        specs = {n: g.spec for n, g in BENCHMARKS.items()}
        assert specs["OCEAN"].sharing > specs["BLACKSCHOLES"].sharing
        assert specs["LU"].reuse > specs["BARNES"].reuse
