"""Tests for the TaintCheck-oriented secure-server workload."""

import pytest

from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.lifeguards.sequential import SequentialTaintCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.workloads.server import SecureServer


def truth_errors(program):
    guard = SequentialTaintCheck()
    guard.run_order(program)
    return {(r.ref, r.location) for r in guard.errors}


def butterfly_flags(program, h, mode="relaxed"):
    guard = ButterflyTaintCheck(mode=mode)
    ButterflyEngine(guard).run(partition_by_global_order(program, h))
    return {(r.ref, r.location) for r in guard.errors}


class TestCleanServer:
    def test_recorded_run_is_exploit_free(self):
        prog = SecureServer().generate(4, 8000, seed=3)
        assert not truth_errors(prog)

    def test_small_epochs_silent(self):
        prog = SecureServer().generate(4, 8000, seed=3)
        assert not butterfly_flags(prog, 256)

    def test_large_epochs_flag_sanitization_races(self):
        prog = SecureServer().generate(4, 8000, seed=3)
        flags = butterfly_flags(prog, 4096)
        assert flags  # the taint sits in the wings of the use

    def test_fp_rate_monotone_in_epoch_size(self):
        prog = SecureServer().generate(3, 8000, seed=5)
        counts = [
            len(butterfly_flags(prog, h)) for h in (256, 1024, 4096)
        ]
        assert counts == sorted(counts)


class TestAttackedServer:
    def test_attacks_are_true_errors(self):
        prog = SecureServer(attack_rate=0.5).generate(3, 8000, seed=7)
        truth = truth_errors(prog)
        assert truth

    @pytest.mark.parametrize("mode", ["relaxed", "sc"])
    @pytest.mark.parametrize("h", [256, 2048])
    def test_zero_false_negatives(self, mode, h):
        prog = SecureServer(attack_rate=0.4).generate(3, 8000, seed=9)
        truth = truth_errors(prog)
        flags = butterfly_flags(prog, h, mode=mode)
        missing = truth - flags
        assert not missing, missing

    def test_needs_two_threads(self):
        with pytest.raises(ValueError):
            SecureServer().generate(1, 1000)
