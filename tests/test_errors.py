"""The exception hierarchy is part of the public API surface."""

import pytest

from repro.errors import (
    AnalysisError,
    PartitionError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)


def test_all_derive_from_base():
    for exc in (
        TraceError, PartitionError, AnalysisError, SimulationError,
        WorkloadError,
    ):
        assert issubclass(exc, ReproError)


def test_base_catches_specific():
    with pytest.raises(ReproError):
        raise PartitionError("boom")


def test_distinct_branches():
    assert not issubclass(TraceError, PartitionError)
    assert not issubclass(SimulationError, AnalysisError)
