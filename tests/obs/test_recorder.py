"""Unit tests for the observability recorder primitives."""

import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    JsonlSink,
    NullRecorder,
    Recorder,
    normalize_events,
    read_events,
)


class TestCounters:
    def test_count_accumulates(self):
        rec = Recorder()
        rec.count("a")
        rec.count("a", 4)
        rec.count("b", -2)
        assert rec.counters == {"a": 5, "b": -2}

    def test_counters_update_bulk(self):
        rec = Recorder()
        rec.count("a")
        rec.counters_update([("a", 2), ("b", 3), ("a", 1)])
        assert rec.counters == {"a": 4, "b": 3}

    def test_gauge_keeps_latest(self):
        rec = Recorder()
        rec.gauge("depth", 3)
        rec.gauge("depth", 7)
        assert rec.gauges == {"depth": 7}


class TestEvents:
    def test_events_get_monotonic_seq(self):
        rec = Recorder()
        rec.event("one", x=1)
        rec.event("two", y=[2, 3])
        assert rec.events == [
            {"seq": 1, "ev": "one", "x": 1},
            {"seq": 2, "ev": "two", "y": [2, 3]},
        ]

    def test_keep_events_false_drops_memory_copy(self):
        rec = Recorder(keep_events=False)
        rec.event("one")
        assert rec.events == []


class TestSpans:
    def test_span_aggregates_and_emits_event(self):
        ticks = iter([10, 25, 100, 140])
        rec = Recorder(clock=lambda: next(ticks))
        with rec.span("work", epoch=0):
            pass
        with rec.span("work", epoch=1):
            pass
        assert rec.spans == {"work": [2, 55, 40]}  # count, total, max
        assert rec.events == [
            {"seq": 1, "ev": "work", "epoch": 0, "dur_ns": 15},
            {"seq": 2, "ev": "work", "epoch": 1, "dur_ns": 40},
        ]

    def test_snapshot_shape(self):
        ticks = iter([0, 7])
        rec = Recorder(clock=lambda: next(ticks))
        rec.count("c", 2)
        rec.gauge("g", 1.5)
        with rec.span("s"):
            pass
        assert rec.snapshot() == {
            "counters": {"c": 2},
            "gauges": {"g": 1.5},
            "spans": {"s": {"count": 1, "total_ns": 7, "max_ns": 7}},
        }


class TestJsonlSink:
    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with Recorder(sink=JsonlSink.open(path)) as rec:
            rec.event("alpha", n=1)
            rec.event("error", ref=[0, 3], wing=None)
        assert read_events(path) == rec.events

    def test_open_raises_up_front(self, tmp_path):
        with pytest.raises(OSError):
            JsonlSink.open(str(tmp_path / "no" / "dir" / "x.jsonl"))

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink.open(str(tmp_path / "e.jsonl"))
        sink.close()
        sink.close()
        sink.write({"ev": "dropped"})  # no-op after close, no error

    def test_events_are_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        with Recorder(sink=JsonlSink.open(path)) as rec:
            rec.event("a")
            rec.event("b")
        lines = [
            line
            for line in open(path).read().splitlines()
            if line.strip()
        ]
        assert len(lines) == 2
        for line in lines:
            assert isinstance(json.loads(line), dict)


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        rec = NullRecorder()
        rec.count("a")
        rec.gauge("g", 1)
        rec.counters_update([("a", 1)])
        rec.event("e", x=1)
        with rec.span("s", y=2):
            pass
        assert rec.counters == {}
        assert rec.gauges == {}
        assert rec.spans == {}
        assert rec.events == []

    def test_disabled_flag(self):
        assert NULL_RECORDER.enabled is False
        assert Recorder().enabled is True


class TestNormalizeEvents:
    def test_strips_wall_clock_drops_backend_renumbers(self):
        events = [
            {"seq": 1, "ev": "pass.first", "epoch": 0, "dur_ns": 123},
            {"seq": 2, "ev": "backend.task.submit", "task": 0},
            {"seq": 3, "ev": "backend.task.complete", "task": 0,
             "dur_ns": 9},
            {"seq": 4, "ev": "error", "location": 5, "t_ns": 77},
        ]
        assert normalize_events(events) == [
            {"ev": "pass.first", "epoch": 0, "seq": 1},
            {"ev": "error", "location": 5, "seq": 2},
        ]

    def test_custom_drop_prefixes(self):
        events = [
            {"seq": 1, "ev": "keep.me"},
            {"seq": 2, "ev": "drop.me"},
        ]
        assert normalize_events(events, drop_prefixes=("drop.",)) == [
            {"ev": "keep.me", "seq": 1}
        ]
