"""Second-pass mask kernel == scalar walk, bit for bit.

The ReachingDefinitions mask kernel (``use_mask_kernel=True``, the
hook-free default) evaluates LSOS, body OUT, and the epoch SOS update
as word operations over interned bitsets; the scalar path
(``use_mask_kernel=False``) walks per instruction.  These properties
pin the two to *identical* observable state -- per-block IN/OUT/LSOS/
side-in, the full published SOS history (every epoch boundary), and
engine stats -- across serial/threads/processes backends and across
streamed-vs-materialized runs.  Masks are plain Python ints, so the
equivalence holds (and this module runs) under both numpy and
``REPRO_NO_NUMPY=1``.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.dataflow import (
    DefinitionDomain,
    ExpressionDomain,
    summarize_block,
)
from repro.core.epoch import Block, partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.core.parallel import ProcessPoolBackend, ThreadPoolBackend
from repro.core.reaching_defs import ReachingDefinitions
from repro.core.stream import PartitionSource
from repro.trace.events import Op
from repro.trace.generator import (
    adversarial_instrs,
    simulated_alloc_program,
    simulated_taint_program,
)
from repro.verify.generator import FAMILIES, AdversarialCaseGenerator

THREADS = ThreadPoolBackend(max_workers=4)
PROCESSES = ProcessPoolBackend(max_workers=2)

_DEFINING_OPS = (Op.WRITE, Op.ASSIGN, Op.TAINT, Op.UNTAINT,
                 Op.READ, Op.JUMP, Op.NOP, Op.MALLOC, Op.FREE)


def _state(guard):
    """Everything a ReachingDefinitions run observably computes."""
    return {
        "block_in": guard.block_in,
        "block_out": guard.block_out,
        "block_lsos": guard.block_lsos,
        "side_in": guard.side_in,
        "sos": guard.sos.published(),
        "frontier": guard.sos.frontier,
    }


def _run(prog, h, use_mask_kernel, backend="serial", streamed=False):
    guard = ReachingDefinitions(use_mask_kernel=use_mask_kernel)
    part = partition_by_global_order(prog, h)
    with ButterflyEngine(guard, backend=backend) as engine:
        if streamed:
            stats = engine.run_source(PartitionSource(part))
        else:
            stats = engine.run(part)
    return guard, stats


class TestMaskVsScalar:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
        taint=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_serial_identical(self, seed, threads, h, taint):
        make = simulated_taint_program if taint else simulated_alloc_program
        prog = make(
            random.Random(seed),
            num_threads=threads,
            total_events=60,
            num_locations=6,
        )
        scalar, scalar_stats = _run(prog, h, use_mask_kernel=False)
        masked, masked_stats = _run(prog, h, use_mask_kernel=True)
        assert masked_stats == scalar_stats
        assert _state(masked) == _state(scalar)

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
    )
    @settings(max_examples=10, deadline=None)
    def test_parallel_backends_identical(self, seed, threads, h):
        """Mask kernel under threads/processes == scalar under serial."""
        prog = simulated_taint_program(
            random.Random(seed),
            num_threads=threads,
            total_events=50,
            num_locations=5,
        )
        ref, ref_stats = _run(prog, h, use_mask_kernel=False)
        for backend in (THREADS, PROCESSES):
            guard, stats = _run(
                prog, h, use_mask_kernel=True, backend=backend
            )
            assert stats == ref_stats
            assert _state(guard) == _state(ref)

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
    )
    @settings(max_examples=10, deadline=None)
    def test_streamed_matches_materialized(self, seed, threads, h):
        """Both kernels streamed == scalar materialized, with the SOS
        captured at every epoch boundary as it is published (streamed
        runs evict old SOS states, so the comparison snapshots each
        frontier advance before eviction can strike)."""
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=60,
            num_locations=6,
        )
        ref, ref_stats = _run(prog, h, use_mask_kernel=False)
        ref_sos = ref.sos.published()
        assert set(ref_sos) == set(
            range(ref.sos.frontier + 1)
        ), "materialized history must cover every epoch boundary"
        for use_mask in (False, True):
            guard = ReachingDefinitions(use_mask_kernel=use_mask)
            source = PartitionSource(partition_by_global_order(prog, h))
            captured = {}

            def snap():
                for lid, state in guard.sos.published().items():
                    captured.setdefault(lid, state)

            with ButterflyEngine(guard) as engine:
                engine.attach_source(source)
                snap()
                for lid, blocks in enumerate(source.epochs()):
                    engine.feed_blocks(lid, blocks)
                    snap()
                engine.finish()
                snap()
                stats = engine.stats
            assert stats == ref_stats, use_mask
            assert captured == ref_sos, use_mask
            assert guard.block_in == ref.block_in, use_mask
            assert guard.block_out == ref.block_out, use_mask
            assert guard.block_lsos == ref.block_lsos, use_mask
            assert guard.side_in == ref.side_in, use_mask

    def test_every_adversarial_family(self):
        """Replay every generator family through both kernels."""
        gen = AdversarialCaseGenerator(seed=31)
        seen = set()
        for index in range(3 * len(FAMILIES)):
            case = gen.case(index)
            seen.add(case.label)
            runs = []
            for use_mask in (False, True):
                guard = ReachingDefinitions(use_mask_kernel=use_mask)
                with ButterflyEngine(guard) as engine:
                    stats = engine.run(case.partition())
                runs.append((_state(guard), stats))
            assert runs[1] == runs[0], case.label
        assert seen == set(FAMILIES)

    def test_mask_kernel_rejects_hooks(self):
        import pytest

        with pytest.raises(ValueError):
            ReachingDefinitions(
                on_instruction=lambda *a: None, use_mask_kernel=True
            )


class TestColumnarSummarizer:
    """The columnar first-pass summarizer is bit-identical to the
    object walk for both element domains (trivially so without numpy,
    where the gate falls back to the object path)."""

    def _facts_dict(self, facts):
        return {
            "block_id": facts.block_id,
            "gen": facts.gen,
            "all_gen": facts.all_gen,
            "killed_vars": facts.killed_vars,
            "last_event": facts.last_event,
        }

    @given(seed=st.integers(0, 10_000), n=st.integers(0, 120))
    @settings(max_examples=40, deadline=None)
    def test_domains_identical(self, seed, n):
        rng = random.Random(seed)
        instrs = tuple(
            adversarial_instrs(
                rng, n, num_locations=8, ops=_DEFINING_OPS, max_extent=4
            )
        )
        obj_block = Block(1, 2, 0, instrs)
        col_block = Block(1, 2, 0, instrs)
        col_block.columns  # force the columnar backing -> vector gate
        for domain in (DefinitionDomain(), ExpressionDomain()):
            obj = summarize_block(obj_block, domain)
            col = summarize_block(col_block, domain)
            assert self._facts_dict(col) == self._facts_dict(obj)
