"""Property-based tests for valid orderings and interleavings."""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.epoch import partition_fixed
from repro.core.ordering import (
    is_valid_ordering,
    random_valid_ordering,
)
from repro.trace.events import Instr
from repro.trace.interleave import (
    is_valid_sc_order,
    random_interleave,
    round_robin,
)
from repro.trace.program import TraceProgram


def program_of(lengths):
    return TraceProgram.from_lists(
        *[[Instr.write(t * 100 + i) for i in range(n)] for t, n in enumerate(lengths)]
    )


class TestOrderingProperties:
    @given(
        lengths=st.lists(st.integers(1, 8), min_size=1, max_size=3),
        h=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60)
    def test_random_valid_ordering_is_valid(self, lengths, h, seed):
        part = partition_fixed(program_of(lengths), h)
        order = random_valid_ordering(part, random.Random(seed))
        assert is_valid_ordering(part, order)
        assert len(order) == sum(lengths)

    @given(
        lengths=st.lists(st.integers(1, 8), min_size=1, max_size=3),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60)
    def test_sc_interleavings_are_valid_orderings_single_epoch(
        self, lengths, seed
    ):
        """With everything in one epoch, every SC interleaving is a
        valid ordering (epoch constraints are vacuous)."""
        prog = program_of(lengths)
        part = partition_fixed(prog, sum(lengths) + 1)
        inter = random_interleave(prog, random.Random(seed))
        order = [part.instr_id_of(t, i) for t, i in inter]
        assert is_valid_ordering(part, order)

    @given(
        lengths=st.lists(st.integers(1, 10), min_size=1, max_size=4),
        quantum=st.integers(1, 5),
    )
    def test_round_robin_always_valid_sc(self, lengths, quantum):
        prog = program_of(lengths)
        order = round_robin(prog, quantum=quantum)
        assert is_valid_sc_order(prog, order)

    @given(
        lengths=st.lists(st.integers(1, 8), min_size=2, max_size=3),
        h=st.integers(1, 3),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=60)
    def test_program_order_embedded_in_valid_orderings(
        self, lengths, h, seed
    ):
        part = partition_fixed(program_of(lengths), h)
        order = random_valid_ordering(part, random.Random(seed))
        for t in range(len(lengths)):
            own = [iid for iid in order if iid[1] == t]
            assert own == sorted(own)
