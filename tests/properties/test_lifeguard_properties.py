"""Property-based tests for the lifeguards' central guarantees."""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.epoch import partition_by_global_order, partition_fixed
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.reports import compare_reports
from repro.lifeguards.sequential import (
    SequentialAddrCheck,
    SequentialTaintCheck,
)
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.trace.generator import (
    simulated_alloc_program,
    simulated_taint_program,
)


class TestAddrCheckProperties:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 4),
        h=st.integers(1, 10),
        err=st.floats(0.0, 0.3),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_false_negatives_vs_recorded_order(
        self, seed, threads, h, err
    ):
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=50,
            num_locations=6,
            inject_error_rate=err,
        )
        truth = SequentialAddrCheck()
        truth.run_order(prog)
        # Heartbeats are cut in *execution time* (the paper's global
        # heartbeat): the recorded interleaving is then a valid
        # ordering by construction, which is the theorem's premise.
        # The idempotent filter is off for per-event exactness (it only
        # coalesces repeats of an already-flagged location).
        guard = ButterflyAddrCheck(use_idempotent_filter=False)
        ButterflyEngine(guard).run(partition_by_global_order(prog, h))
        pr = compare_reports(truth.errors, guard.errors, prog.memory_op_count)
        assert pr.false_negatives == 0

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 4),
        h=st.integers(1, 10),
        err=st.floats(0.0, 0.3),
    )
    @settings(max_examples=40, deadline=None)
    def test_filtered_variant_covers_every_error_location(
        self, seed, threads, h, err
    ):
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=50,
            num_locations=6,
            inject_error_rate=err,
        )
        truth = SequentialAddrCheck()
        truth.run_order(prog)
        guard = ButterflyAddrCheck()
        ButterflyEngine(guard).run(partition_by_global_order(prog, h))
        flagged_locs = {r.location for r in guard.errors}
        for r in truth.errors:
            assert r.location in flagged_locs

    @given(seed=st.integers(0, 10_000), threads=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_huge_epoch_flags_superset_of_true_errors_only(
        self, seed, threads
    ):
        """A single giant epoch makes everything potentially concurrent:
        still no false negatives."""
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=40,
            num_locations=5,
            inject_error_rate=0.2,
        )
        truth = SequentialAddrCheck()
        truth.run_order(prog)
        # A single epoch imposes no cross-thread ordering, so any
        # recorded interleaving is consistent with the partition; the
        # filter is off for exact per-event accounting.
        guard = ButterflyAddrCheck(use_idempotent_filter=False)
        ButterflyEngine(guard).run(partition_fixed(prog, 1000))
        pr = compare_reports(truth.errors, guard.errors, prog.memory_op_count)
        assert pr.false_negatives == 0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_single_thread_large_epoch_is_exact(self, seed):
        """With one thread there is no uncertainty: butterfly AddrCheck
        must match sequential AddrCheck exactly (zero false positives
        too) when the filter cannot coalesce errors across the trace."""
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=1,
            total_events=40,
            num_locations=5,
            inject_error_rate=0.2,
        )
        truth = SequentialAddrCheck()
        truth.run_order(prog)
        guard = ButterflyAddrCheck(use_idempotent_filter=False)
        ButterflyEngine(guard).run(partition_fixed(prog, 7))
        truth_set = {(r.ref, r.location, r.kind) for r in truth.errors}
        flag_set = {(r.ref, r.location, r.kind) for r in guard.errors}
        assert truth_set == flag_set


class TestTaintCheckProperties:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
        mode=st.sampled_from(["relaxed", "sc"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_false_negatives_vs_recorded_order(
        self, seed, threads, h, mode
    ):
        prog = simulated_taint_program(
            random.Random(seed),
            num_threads=threads,
            total_events=40,
            num_locations=5,
        )
        truth = SequentialTaintCheck()
        truth.run_order(prog)
        guard = ButterflyTaintCheck(mode=mode)
        ButterflyEngine(guard).run(partition_by_global_order(prog, h))
        flagged = {(r.ref, r.location) for r in guard.errors}
        for r in truth.errors:
            assert (r.ref, r.location) in flagged

    @given(seed=st.integers(0, 10_000), h=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_single_thread_taintcheck_is_exact(self, seed, h):
        prog = simulated_taint_program(
            random.Random(seed), num_threads=1, total_events=40,
            num_locations=5,
        )
        truth = SequentialTaintCheck()
        truth.run_order(prog)
        guard = ButterflyTaintCheck(mode="sc")
        ButterflyEngine(guard).run(partition_fixed(prog, h))
        truth_set = {(r.ref, r.location) for r in truth.errors}
        flag_set = {(r.ref, r.location) for r in guard.errors}
        assert truth_set == flag_set
