"""Resilience determinism: fault-injected runs must change nothing.

The supervisor's whole contract is that recovery is invisible: a run
surviving injected crashes, corruptions, kills, and hangs -- including
one that degraded down the backend ladder mid-run, or one that was
killed at an epoch boundary and resumed -- produces error logs,
``EngineStats``, and published summaries *bit-identical* to a fault-free
serial run.  These properties pin that down on randomized traces and
randomized fault schedules.

Pool backends are shared at module scope (pool spin-up per hypothesis
example would dominate); the supervisor wrappers are constructed per
example around them and never closed here.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.core.parallel import ProcessPoolBackend, ThreadPoolBackend
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.obs import Recorder, normalize_events
from repro.resilience import Checkpointer, FaultPlan, RetryPolicy, SupervisedBackend
from repro.resilience.checkpoint import load_checkpoint
from repro.trace.generator import simulated_alloc_program

THREADS = ThreadPoolBackend(max_workers=4)
PROCESSES = ProcessPoolBackend(max_workers=2)

#: Deep retry budget + zero backoff: a fault schedule cannot plausibly
#: exhaust it (p ~ rate^31 per task -- hypothesis DID find the rate^9
#: tail with a budget of 8), and retries cost no wall time.
POLICY = RetryPolicy(max_retries=30, backoff_base=0.0, jitter=0.0,
                     degrade_after=99)


def _stats_tuple(stats):
    return (
        stats.epochs_processed,
        stats.first_pass_instructions,
        stats.second_pass_instructions,
        stats.meets,
        stats.wing_summaries_combined,
    )


def _report_list(errors):
    return [(r.kind, r.location, r.ref, r.block, r.detail) for r in errors]


def _sos_states(guard):
    return (dict(guard.sos._states), guard.sos._frontier)


def _addr_fingerprint(guard, stats):
    return (
        _stats_tuple(stats),
        _report_list(guard.errors),
        _sos_states(guard),
        guard.block_work,
    )


def _program(seed, threads):
    return simulated_alloc_program(
        random.Random(seed),
        num_threads=threads,
        total_events=60,
        num_locations=6,
        inject_error_rate=0.2,
    )


class TestFaultInjectionPreservesResults:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 10),
        fault_seed=st.integers(0, 1_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_crash_corrupt_on_threads(self, seed, threads, h, fault_seed):
        prog = _program(seed, threads)
        part = partition_by_global_order(prog, h)
        ref = ButterflyAddrCheck()
        ref_print = _addr_fingerprint(ref, ButterflyEngine(ref).run(part))

        plan = FaultPlan(crash=0.2, corrupt=0.15, seed=fault_seed)
        guard = ButterflyAddrCheck()
        backend = SupervisedBackend(THREADS, policy=POLICY, plan=plan)
        stats = ButterflyEngine(guard, backend=backend).run(part)
        assert _addr_fingerprint(guard, stats) == ref_print

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
        fault_seed=st.integers(0, 1_000),
    )
    @settings(max_examples=6, deadline=None)
    def test_crash_kill_on_processes(self, seed, threads, h, fault_seed):
        prog = _program(seed, threads)
        part = partition_by_global_order(prog, h)
        ref = ButterflyAddrCheck()
        ref_print = _addr_fingerprint(ref, ButterflyEngine(ref).run(part))

        # Low kill rate: every kill costs a pool teardown + respawn.
        plan = FaultPlan(crash=0.1, kill=0.02, corrupt=0.1, seed=fault_seed)
        guard = ButterflyAddrCheck()
        backend = SupervisedBackend(PROCESSES, policy=POLICY, plan=plan)
        stats = ButterflyEngine(guard, backend=backend).run(part)
        assert _addr_fingerprint(guard, stats) == ref_print

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 10),
        fault_seed=st.integers(0, 1_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_hang_faults_on_serial_supervisor(self, seed, threads, h, fault_seed):
        # Zero-length hangs exercise the hang path (private-copy
        # execution) without wall-clock cost.
        prog = _program(seed, threads)
        part = partition_by_global_order(prog, h)
        ref = ButterflyAddrCheck()
        ref_print = _addr_fingerprint(ref, ButterflyEngine(ref).run(part))

        plan = FaultPlan(crash=0.15, hang=0.2, corrupt=0.1,
                         seed=fault_seed, hang_s=0.0)
        guard = ButterflyAddrCheck()
        backend = SupervisedBackend("serial", policy=POLICY, plan=plan)
        stats = ButterflyEngine(guard, backend=backend).run(part)
        assert _addr_fingerprint(guard, stats) == ref_print

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
        fault_seed=st.integers(0, 1_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_racecheck_under_faults(self, seed, threads, h, fault_seed):
        prog = _program(seed, threads)
        part = partition_by_global_order(prog, h)
        ref = ButterflyRaceCheck()
        ref_stats = ButterflyEngine(ref).run(part)

        plan = FaultPlan(crash=0.2, corrupt=0.1, seed=fault_seed)
        guard = ButterflyRaceCheck()
        backend = SupervisedBackend(THREADS, policy=POLICY, plan=plan)
        stats = ButterflyEngine(guard, backend=backend).run(part)
        assert _stats_tuple(stats) == _stats_tuple(ref_stats)
        assert _report_list(guard.errors) == _report_list(ref.errors)
        assert [
            (r.kind, r.location, r.body_ref) for r in guard.races
        ] == [(r.kind, r.location, r.body_ref) for r in ref.races]


class TestFaultInjectionPreservesEventLog:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
        fault_seed=st.integers(0, 1_000),
    )
    @settings(max_examples=6, deadline=None)
    def test_normalized_log_matches_fault_free_serial(
        self, seed, threads, h, fault_seed
    ):
        """``resilience.*`` events are fault-schedule telemetry; after
        :func:`normalize_events` drops them (with ``backend.*`` and the
        wall-clock fields), a faulty run's log equals the fault-free
        serial log -- no analysis event is lost or duplicated."""
        prog = _program(seed, threads)
        part = partition_by_global_order(prog, h)

        ref_rec = Recorder()
        ButterflyEngine(
            ButterflyAddrCheck(), recorder=ref_rec
        ).run(part)
        ref_log = normalize_events(ref_rec.events)

        plan = FaultPlan(crash=0.2, corrupt=0.15, seed=fault_seed)
        rec = Recorder()
        backend = SupervisedBackend(THREADS, policy=POLICY, plan=plan)
        ButterflyEngine(
            ButterflyAddrCheck(), backend=backend, recorder=rec
        ).run(part)
        assert normalize_events(rec.events) == ref_log
        # The raw log does carry the fault telemetry it just filtered.
        if any(ev["ev"] == "resilience.fault" for ev in rec.events):
            assert rec.counters["resilience.faults"] >= 1


class TestDegradationPreservesResults:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
    )
    @settings(max_examples=6, deadline=None)
    def test_forced_full_ladder_matches_serial(self, seed, threads, h):
        """A run that degrades processes -> threads -> serial mid-run
        (forced by recording pool incidents directly) stays identical."""
        prog = _program(seed, threads)
        part = partition_by_global_order(prog, h)
        ref = ButterflyAddrCheck()
        ref_print = _addr_fingerprint(ref, ButterflyEngine(ref).run(part))

        backend = SupervisedBackend(
            ProcessPoolBackend(max_workers=2),
            policy=RetryPolicy(backoff_base=0.0, jitter=0.0, degrade_after=1),
        )
        guard = ButterflyAddrCheck()
        engine = ButterflyEngine(guard, backend=backend)
        engine.attach(part)
        mid = part.num_epochs // 2
        for lid in range(part.num_epochs):
            if lid == mid:
                backend._pool_incident("forced")  # processes -> threads
            if lid == mid + 1:
                backend._pool_incident("forced")  # threads -> serial
            engine.feed_epoch(lid)
        engine.finish()
        backend.close()
        assert backend.inner.name == "serial"
        assert _addr_fingerprint(guard, engine.stats) == ref_print


class TestResumeUnderFaults:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        fault_seed=st.integers(0, 1_000),
    )
    @settings(max_examples=6, deadline=None)
    def test_faulty_checkpointed_run_resumes_identically(
        self, seed, threads, fault_seed, tmp_path_factory
    ):
        """Kill a fault-injected supervised run at an epoch boundary,
        resume it on a *different* backend: still bit-identical."""
        h = 6
        prog = _program(seed, threads)
        part = partition_by_global_order(prog, h)
        if part.num_epochs < 3:
            return
        ref = ButterflyAddrCheck()
        ref_print = _addr_fingerprint(ref, ButterflyEngine(ref).run(part))

        path = str(tmp_path_factory.mktemp("ck") / "run.ckpt")
        plan = FaultPlan(crash=0.2, corrupt=0.1, seed=fault_seed)
        backend = SupervisedBackend(THREADS, policy=POLICY, plan=plan)
        engine = ButterflyEngine(ButterflyAddrCheck(), backend=backend)
        engine.enable_checkpoints(Checkpointer(path, {"h": h}))
        engine.attach(part)
        stop_after = max(2, part.num_epochs // 2)
        for lid in range(stop_after):
            engine.feed_epoch(lid)

        ck = load_checkpoint(path)
        resumed = ButterflyEngine(ck.analysis)  # plain serial from here
        resumed.attach(part)
        ck.restore_into(resumed)
        for lid in range(ck.next_epoch, part.num_epochs):
            resumed.feed_epoch(lid)
        resumed.finish()
        assert _addr_fingerprint(ck.analysis, resumed.stats) == ref_print
