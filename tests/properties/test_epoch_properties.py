"""Property-based tests (hypothesis) for epoch partitioning."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.epoch import (
    partition_by_global_order,
    partition_fixed,
    partition_with_skew,
)
from repro.trace.events import Instr
from repro.trace.program import TraceProgram

lengths_st = st.lists(st.integers(0, 30), min_size=1, max_size=4)


def program_of(lengths):
    return TraceProgram.from_lists(
        *[[Instr.write(i) for i in range(n)] for n in lengths]
    )


class TestPartitionInvariants:
    @given(lengths=lengths_st, h=st.integers(1, 10))
    def test_blocks_tile_every_thread(self, lengths, h):
        prog = program_of(lengths)
        part = partition_fixed(prog, h)
        for t, n in enumerate(lengths):
            recovered = [
                i.dst
                for l in range(part.num_epochs)
                for i in part.block(l, t)
            ]
            assert recovered == list(range(n))

    @given(lengths=lengths_st, h=st.integers(1, 10))
    def test_epoch_of_consistent_with_blocks(self, lengths, h):
        prog = program_of(lengths)
        part = partition_fixed(prog, h)
        for t, n in enumerate(lengths):
            for idx in range(n):
                lid = part.epoch_of(t, idx)
                iid = part.instr_id_of(t, idx)
                assert iid[0] == lid
                assert part.instr(iid).dst == idx

    @given(
        lengths=st.lists(st.integers(20, 60), min_size=1, max_size=3),
        h=st.integers(6, 12),
        skew=st.integers(0, 2),
        seed=st.integers(0, 100),
    )
    def test_skewed_partition_tiles(self, lengths, h, skew, seed):
        import random

        prog = program_of(lengths)
        part = partition_with_skew(prog, h, skew, rng=random.Random(seed))
        for t, n in enumerate(lengths):
            recovered = [
                i.dst
                for l in range(part.num_epochs)
                for i in part.block(l, t)
            ]
            assert recovered == list(range(n))

    @given(
        lengths=st.lists(st.integers(1, 20), min_size=2, max_size=3),
        h=st.integers(1, 6),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40)
    def test_global_order_partition_tiles(self, lengths, h, seed):
        import random

        prog = program_of(lengths)
        rng = random.Random(seed)
        from repro.trace.interleave import random_interleave

        prog.true_order = random_interleave(prog, rng)
        part = partition_by_global_order(prog, h)
        for t, n in enumerate(lengths):
            recovered = [
                i.dst
                for l in range(part.num_epochs)
                for i in part.block(l, t)
            ]
            assert recovered == list(range(n))
