"""Property-based tests (hypothesis) for epoch partitioning."""

import os
import random
import tempfile

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.core.epoch import (
    partition_by_global_order,
    partition_fixed,
    partition_from_boundaries,
    partition_with_skew,
)
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.resilience import Checkpointer, load_checkpoint
from repro.trace.events import Instr
from repro.trace.program import TraceProgram
from repro.trace.serialize import iter_load, save_stream_file

lengths_st = st.lists(st.integers(0, 30), min_size=1, max_size=4)


def program_of(lengths):
    return TraceProgram.from_lists(
        *[[Instr.write(i) for i in range(n)] for n in lengths]
    )


class TestPartitionInvariants:
    @given(lengths=lengths_st, h=st.integers(1, 10))
    def test_blocks_tile_every_thread(self, lengths, h):
        prog = program_of(lengths)
        part = partition_fixed(prog, h)
        for t, n in enumerate(lengths):
            recovered = [
                i.dst
                for l in range(part.num_epochs)
                for i in part.block(l, t)
            ]
            assert recovered == list(range(n))

    @given(lengths=lengths_st, h=st.integers(1, 10))
    def test_epoch_of_consistent_with_blocks(self, lengths, h):
        prog = program_of(lengths)
        part = partition_fixed(prog, h)
        for t, n in enumerate(lengths):
            for idx in range(n):
                lid = part.epoch_of(t, idx)
                iid = part.instr_id_of(t, idx)
                assert iid[0] == lid
                assert part.instr(iid).dst == idx

    @given(
        lengths=st.lists(st.integers(20, 60), min_size=1, max_size=3),
        h=st.integers(6, 12),
        skew=st.integers(0, 2),
        seed=st.integers(0, 100),
    )
    def test_skewed_partition_tiles(self, lengths, h, skew, seed):
        import random

        prog = program_of(lengths)
        part = partition_with_skew(prog, h, skew, rng=random.Random(seed))
        for t, n in enumerate(lengths):
            recovered = [
                i.dst
                for l in range(part.num_epochs)
                for i in part.block(l, t)
            ]
            assert recovered == list(range(n))

    @given(
        lengths=st.lists(st.integers(1, 20), min_size=2, max_size=3),
        h=st.integers(1, 6),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40)
    def test_global_order_partition_tiles(self, lengths, h, seed):
        import random

        prog = program_of(lengths)
        rng = random.Random(seed)
        from repro.trace.interleave import random_interleave

        prog.true_order = random_interleave(prog, rng)
        part = partition_by_global_order(prog, h)
        for t, n in enumerate(lengths):
            recovered = [
                i.dst
                for l in range(part.num_epochs)
                for i in part.block(l, t)
            ]
            assert recovered == list(range(n))


def _fingerprint(guard, stats):
    return (
        (stats.epochs_processed, stats.first_pass_instructions,
         stats.second_pass_instructions, stats.meets),
        [(r.kind, r.location, r.ref, r.block, r.detail)
         for r in guard.errors],
    )


def _run(partition):
    guard = ButterflyAddrCheck()
    stats = ButterflyEngine(guard).run(partition)
    return _fingerprint(guard, stats)


class TestSkewTailClamping:
    """partition_with_skew's jittered cuts are clamped twice (into the
    thread's [0, n] range, then forward-monotone); these are the
    invariants every downstream consumer leans on."""

    @given(
        lengths=lengths_st,
        h=st.integers(2, 12),
        skew=st.integers(0, 5),
        seed=st.integers(0, 500),
    )
    def test_cuts_are_monotone_in_range_and_aligned(
        self, lengths, h, skew, seed
    ):
        assume(2 * skew < h)
        prog = program_of(lengths)
        part = partition_with_skew(prog, h, skew, rng=random.Random(seed))
        counts = {len(cuts) for cuts in part.boundaries}
        assert len(counts) == 1  # every thread has every heartbeat
        for n, cuts in zip(lengths, part.boundaries):
            assert cuts[-1] == n
            assert all(0 <= c <= n for c in cuts)
            assert all(a <= b for a, b in zip(cuts, cuts[1:]))

    @given(
        lengths=st.lists(st.integers(0, 24), min_size=2, max_size=3),
        h=st.integers(2, 6),
        skew=st.integers(0, 2),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_zero_length_tails_round_trip(self, lengths, h, skew, seed):
        """A short thread's clamped tail (zero-length blocks) survives
        the v2 stream format and checkpoint/resume bit-identically."""
        assume(2 * skew < h)
        assume(max(lengths) - min(lengths) >= h)  # favors clamped tails
        prog = program_of(lengths)
        part = partition_with_skew(prog, h, skew, rng=random.Random(seed))
        # Only cases where clamping really produced a zero-length tail
        # block are interesting here (single-epoch partitions have no
        # tail to clamp).
        assume(any(
            len(cuts) >= 2 and cuts[-2] == cuts[-1]
            for cuts in part.boundaries
        ))
        reference = _run(partition_from_boundaries(prog, part.boundaries))

        with tempfile.TemporaryDirectory() as tmp:
            # v2 stream round-trip.
            path = os.path.join(tmp, "t.stream.jsonl")
            save_stream_file(
                partition_from_boundaries(prog, part.boundaries), path
            )
            guard = ButterflyAddrCheck()
            stats = ButterflyEngine(guard).run_source(iter_load(path))
            assert _fingerprint(guard, stats) == reference

            # Checkpoint/resume round-trip (kill after two epochs).
            live = partition_from_boundaries(prog, part.boundaries)
            assume(live.num_epochs >= 3)
            ck_path = os.path.join(tmp, "run.ckpt")
            engine = ButterflyEngine(ButterflyAddrCheck())
            engine.enable_checkpoints(
                Checkpointer(ck_path, {"case": "skew-tail"})
            )
            engine.attach(live)
            for lid in range(2):
                engine.feed_epoch(lid)
            ck = load_checkpoint(ck_path)
            resumed = ButterflyEngine(ck.analysis)
            resumed.attach(partition_from_boundaries(prog, part.boundaries))
            ck.restore_into(resumed)
            for lid in range(ck.next_epoch, live.num_epochs):
                resumed.feed_epoch(lid)
            resumed.finish()
            assert _fingerprint(ck.analysis, resumed.stats) == reference
