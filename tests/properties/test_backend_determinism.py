"""Backend determinism: serial, threads, and processes must agree.

The engine's parallel fan-out commits in the serial schedule's order,
so every observable output -- ``EngineStats``, error reports (including
their order), per-block work counters, and published summaries -- must
be *identical* across execution backends, not merely equivalent.  These
properties pin that down on randomized traces for every lifeguard and
for the generic dataflow analyses.

Pool backends are shared at module scope so hypothesis examples reuse
the workers instead of paying pool spin-up per example (the engine
never owns a backend passed in as an instance).
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.core.parallel import ProcessPoolBackend, ThreadPoolBackend
from repro.core.reaching_defs import ReachingDefinitions
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.obs import Recorder, normalize_events
from repro.trace.generator import (
    simulated_alloc_program,
    simulated_taint_program,
)

THREADS = ThreadPoolBackend(max_workers=4)
PROCESSES = ProcessPoolBackend(max_workers=2)
BACKENDS = [("serial", "serial"), ("threads", THREADS), ("processes", PROCESSES)]


def _stats_tuple(stats):
    return (
        stats.epochs_processed,
        stats.first_pass_instructions,
        stats.second_pass_instructions,
        stats.meets,
        stats.wing_summaries_combined,
    )


def _run(make_guard, prog, h):
    """Run one guard per backend; return {name: (guard, stats_tuple)}."""
    out = {}
    for name, backend in BACKENDS:
        guard = make_guard()
        with ButterflyEngine(guard, backend=backend) as engine:
            stats = engine.run(partition_by_global_order(prog, h))
        out[name] = (guard, _stats_tuple(stats))
    return out


def _report_list(errors):
    """Order-sensitive fingerprint of an error log."""
    return [(r.kind, r.location, r.ref, r.block, r.detail) for r in errors]


def _sos_states(guard):
    """Value-comparable snapshot of a guard's SOS history."""
    return (dict(guard.sos._states), guard.sos._frontier)


class TestAddrCheckDeterminism:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 10),
        err=st.floats(0.0, 0.3),
    )
    @settings(max_examples=20, deadline=None)
    def test_backends_bit_identical(self, seed, threads, h, err):
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=60,
            num_locations=6,
            inject_error_rate=err,
        )
        runs = _run(ButterflyAddrCheck, prog, h)
        ref_guard, ref_stats = runs["serial"]
        for name in ("threads", "processes"):
            guard, stats = runs[name]
            assert stats == ref_stats, name
            assert _report_list(guard.errors) == _report_list(
                ref_guard.errors
            ), name
            assert guard.block_work == ref_guard.block_work, name
            assert _sos_states(guard) == _sos_states(ref_guard), name
            assert guard.recorded_accesses == ref_guard.recorded_accesses, name

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 10),
        err=st.floats(0.0, 0.3),
    )
    @settings(max_examples=20, deadline=None)
    def test_optimized_matches_reference(self, seed, threads, h, err):
        """The bitset/scanner fast path reports exactly the reference
        implementation's errors (order may differ: bit-decode order vs
        set iteration), work counters, and state."""
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=60,
            num_locations=6,
            inject_error_rate=err,
        )
        part = partition_by_global_order(prog, h)
        ref = ButterflyAddrCheck(optimized=False)
        ref_stats = ButterflyEngine(ref).run(part)
        opt = ButterflyAddrCheck(optimized=True)
        opt_stats = ButterflyEngine(opt).run(part)
        assert _stats_tuple(opt_stats) == _stats_tuple(ref_stats)
        assert set(_report_list(opt.errors)) == set(_report_list(ref.errors))
        assert opt.block_work == ref.block_work
        assert _sos_states(opt) == _sos_states(ref)
        assert opt.recorded_accesses == ref.recorded_accesses


class TestRaceCheckDeterminism:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 10),
    )
    @settings(max_examples=15, deadline=None)
    def test_backends_bit_identical(self, seed, threads, h):
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=60,
            num_locations=6,
        )
        runs = _run(ButterflyRaceCheck, prog, h)
        ref_guard, ref_stats = runs["serial"]
        ref_races = [
            (r.kind, r.location, r.body_ref) for r in ref_guard.races
        ]
        for name in ("threads", "processes"):
            guard, stats = runs[name]
            assert stats == ref_stats, name
            assert _report_list(guard.errors) == _report_list(
                ref_guard.errors
            ), name
            assert [
                (r.kind, r.location, r.body_ref) for r in guard.races
            ] == ref_races, name


class TestTaintCheckDeterminism:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
        mode=st.sampled_from(["relaxed", "sc"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_backends_bit_identical(self, seed, threads, h, mode):
        prog = simulated_taint_program(
            random.Random(seed),
            num_threads=threads,
            total_events=50,
            num_locations=5,
        )
        runs = _run(lambda: ButterflyTaintCheck(mode=mode), prog, h)
        ref_guard, ref_stats = runs["serial"]
        for name in ("threads", "processes"):
            guard, stats = runs[name]
            assert stats == ref_stats, name
            assert _report_list(guard.errors) == _report_list(
                ref_guard.errors
            ), name
            assert _sos_states(guard) == _sos_states(ref_guard), name


def _metrics_fingerprint(rec):
    """The recorder's deterministic content.

    ``backend.*`` telemetry (fan-out batches, task submit/complete,
    queue depth) exists only on concurrent backends and is excluded by
    contract; everything else must be bit-identical across backends.
    """
    return (
        {k: v for k, v in rec.counters.items()
         if not k.startswith("backend.")},
        {k: v for k, v in rec.gauges.items()
         if not k.startswith("backend.")},
        {k: v[0] for k, v in rec.spans.items()
         if not k.startswith("backend.")},
    )


def _instrumented_run(make_guard, prog, h):
    """One recorded run per backend; return {name: (log, metrics)}."""
    out = {}
    for name, backend in BACKENDS:
        rec = Recorder()
        guard = make_guard()
        with ButterflyEngine(guard, backend=backend, recorder=rec) as engine:
            engine.run(partition_by_global_order(prog, h))
        out[name] = (normalize_events(rec.events), _metrics_fingerprint(rec))
    return out


class TestObservabilityDeterminism:
    """The event log and metrics are analysis facts, not schedule facts.

    After :func:`normalize_events` (drop ``backend.*``, strip wall-clock
    fields, renumber), the logs of all three backends must compare
    equal -- including the order of error events, since all emission
    happens on the serial commit path.
    """

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 10),
        err=st.floats(0.0, 0.3),
    )
    @settings(max_examples=10, deadline=None)
    def test_addrcheck_logs_identical(self, seed, threads, h, err):
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=60,
            num_locations=6,
            inject_error_rate=err,
        )
        runs = _instrumented_run(ButterflyAddrCheck, prog, h)
        ref_log, ref_metrics = runs["serial"]
        assert any(ev["ev"] == "epoch.summary" for ev in ref_log)
        for name in ("threads", "processes"):
            log, metrics = runs[name]
            assert log == ref_log, name
            assert metrics == ref_metrics, name

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
    )
    @settings(max_examples=8, deadline=None)
    def test_racecheck_logs_identical(self, seed, threads, h):
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=50,
            num_locations=5,
        )
        runs = _instrumented_run(ButterflyRaceCheck, prog, h)
        ref_log, ref_metrics = runs["serial"]
        for name in ("threads", "processes"):
            log, metrics = runs[name]
            assert log == ref_log, name
            assert metrics == ref_metrics, name

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
    )
    @settings(max_examples=8, deadline=None)
    def test_taintcheck_logs_identical(self, seed, threads, h):
        prog = simulated_taint_program(
            random.Random(seed),
            num_threads=threads,
            total_events=40,
            num_locations=5,
        )
        runs = _instrumented_run(ButterflyTaintCheck, prog, h)
        ref_log, ref_metrics = runs["serial"]
        for name in ("threads", "processes"):
            log, metrics = runs[name]
            assert log == ref_log, name
            assert metrics == ref_metrics, name

    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 10),
        err=st.floats(0.0, 0.3),
    )
    @settings(max_examples=10, deadline=None)
    def test_optimized_reference_same_errors_and_epoch_counts(
        self, seed, threads, h, err
    ):
        """Differential: the bitset fast path and the reference
        implementation emit the same error *events* (unordered: decode
        order vs set iteration) and identical per-epoch error counts in
        ``epoch.summary``."""
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=60,
            num_locations=6,
            inject_error_rate=err,
        )
        logs = {}
        for optimized in (False, True):
            rec = Recorder()
            guard = ButterflyAddrCheck(optimized=optimized)
            with ButterflyEngine(guard, recorder=rec) as engine:
                engine.run(partition_by_global_order(prog, h))
            logs[optimized] = normalize_events(rec.events)

        def error_set(log):
            return {
                frozenset(
                    (k, tuple(v) if isinstance(v, list) else v)
                    for k, v in ev.items()
                    if k != "seq"
                )
                for ev in log
                if ev["ev"] == "error"
            }

        def epoch_rows(log):
            return [ev for ev in log if ev["ev"] == "epoch.summary"]

        assert error_set(logs[True]) == error_set(logs[False])
        assert epoch_rows(logs[True]) == epoch_rows(logs[False])


class TestReachingDefsDeterminism:
    @given(
        seed=st.integers(0, 10_000),
        threads=st.integers(1, 3),
        h=st.integers(1, 8),
    )
    @settings(max_examples=15, deadline=None)
    def test_backends_identical_dataflow(self, seed, threads, h):
        prog = simulated_alloc_program(
            random.Random(seed),
            num_threads=threads,
            total_events=50,
            num_locations=6,
        )
        runs = _run(lambda: ReachingDefinitions(keep_history=True), prog, h)
        ref_guard, ref_stats = runs["serial"]
        for name in ("threads", "processes"):
            guard, stats = runs[name]
            assert stats == ref_stats, name
            assert guard.block_in == ref_guard.block_in, name
            assert guard.block_out == ref_guard.block_out, name
