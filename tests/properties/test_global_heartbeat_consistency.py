"""The premise that makes the theorems apply to recorded executions:

when heartbeats are cut in *execution time* (``partition_by_global_order``),
the recorded interleaving is itself a valid ordering of the resulting
partition -- instructions of epoch ``l`` really do all precede
instructions of epoch ``l+2``.  This is the bridge between the paper's
machine model (finite buffering bounds how stale a visible instruction
can be) and the analysis' two-epoch rule.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.epoch import partition_by_global_order
from repro.core.ordering import is_valid_ordering
from repro.trace.generator import simulated_alloc_program
from repro.workloads.registry import BENCHMARKS, get_benchmark


class TestRecordedOrderIsValid:
    @given(
        seed=st.integers(0, 5000),
        threads=st.integers(1, 4),
        h=st.integers(1, 9),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_simulated_executions(self, seed, threads, h):
        prog = simulated_alloc_program(
            random.Random(seed), num_threads=threads, total_events=40,
            num_locations=6,
        )
        part = partition_by_global_order(prog, h)
        order = [part.instr_id_of(t, i) for t, i in prog.true_order]
        assert is_valid_ordering(part, order)

    @given(
        name=st.sampled_from(sorted(BENCHMARKS)),
        h=st.sampled_from([64, 256, 1024]),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=15, deadline=None)
    def test_benchmark_workloads(self, name, h, seed):
        prog = get_benchmark(name).generate(3, 2500, seed=seed)
        part = partition_by_global_order(prog, h)
        order = [part.instr_id_of(t, i) for t, i in prog.true_order]
        assert is_valid_ordering(part, order)
