"""Oracle-backed provenance for error events.

Every ``error`` event the instrumented lifeguards emit carries
``(epoch, thread, index, ref)`` naming the body-side instruction and,
for second-pass flags, a ``wing`` naming the concurrent block being
blamed.  These tests pin the provenance contract on tiny traces:

- **Structural**: ``(epoch, thread)`` is a real block, ``index`` is in
  range, ``ref`` is exactly that block's global ref of ``index``, and a
  ``wing`` is genuinely wing-adjacent (different thread, at most one
  epoch away) and really performs the kind of operation it is blamed
  for at the flagged location.
- **Ordering oracle**: for AddrCheck first-pass errors (idempotent
  filter off, so flags are instruction-precise), the flagged ``(ref,
  location)`` must be an error some *valid ordering* of the trace
  produces under the original sequential lifeguard -- the butterfly
  LSOS only drops allocations that fail along every ordering, so each
  first-pass flag must be reproducible by at least one interleaving
  enumerated by :func:`repro.core.ordering.all_valid_orderings`.
"""

import random

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.core.ordering import all_valid_orderings
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.obs import Recorder
from repro.trace.events import Op
from repro.trace.generator import random_program

ADDR_OPS = (Op.MALLOC, Op.FREE, Op.READ, Op.WRITE, Op.NOP)
TAINT_OPS = (Op.TAINT, Op.UNTAINT, Op.ASSIGN, Op.JUMP, Op.NOP)
RACE_OPS = (Op.MALLOC, Op.FREE, Op.READ, Op.WRITE, Op.ASSIGN, Op.NOP)


def tiny_trace(seed, ops, threads=2, length=4, locations=3):
    return random_program(
        random.Random(seed),
        num_threads=threads,
        length=length,
        num_locations=locations,
        ops=ops,
    )


def error_events(guard, part):
    rec = Recorder()
    with ButterflyEngine(guard, recorder=rec) as engine:
        engine.run(part)
    return [ev for ev in rec.events if ev["ev"] == "error"]


def assert_structural(part, ev):
    """The body-side provenance names a real instruction."""
    epoch, thread, index = ev["epoch"], ev["thread"], ev["index"]
    block = part.block(epoch, thread)
    assert 0 <= index < len(block), ev
    assert tuple(ev["ref"]) == block.global_ref(index), ev
    assert ev["stage"] in ("first", "second"), ev
    wing = ev.get("wing")
    if wing is not None:
        wl, wt = wing
        assert wt != thread, ev
        assert abs(wl - epoch) <= 1, ev
        part.block(wl, wt)  # raises if out of range


def changes_alloc_state(block, loc):
    return any(
        instr.op in (Op.MALLOC, Op.FREE) and loc in instr.extent
        for instr in block
    )


def touches(block, loc, side):
    """Whether ``block`` reads (side='reads') or writes ``loc``."""
    for instr in block:
        if side == "reads":
            if loc in instr.srcs:
                return True
        else:
            if instr.op in (Op.MALLOC, Op.FREE):
                if loc in instr.extent:
                    return True
            elif instr.dst == loc and instr.op in (
                Op.WRITE, Op.ASSIGN, Op.TAINT, Op.UNTAINT
            ):
                return True
    return False


def addrcheck_oracle(part):
    """Union of sequential AddrCheck errors over every valid ordering,
    as (global ref, location) pairs."""
    found = set()
    for order in all_valid_orderings(part):
        guard = SequentialAddrCheck()
        for iid in order:
            guard.process(iid, part.instr(iid))
        for report in guard.errors:
            found.add((part.global_ref_of(report.ref), report.location))
    return found


class TestAddrCheckProvenance:
    @pytest.mark.parametrize("seed", range(20))
    def test_first_pass_flags_reproducible_by_some_ordering(self, seed):
        prog = tiny_trace(seed, ADDR_OPS)
        part = partition_fixed(prog, 2)
        guard = ButterflyAddrCheck(use_idempotent_filter=False)
        events = error_events(guard, part)
        oracle = addrcheck_oracle(part)
        for ev in events:
            assert_structural(part, ev)
            if ev["stage"] == "first":
                assert (tuple(ev["ref"]), ev["location"]) in oracle, (
                    f"seed {seed}: first-pass flag not reproducible "
                    f"by any valid ordering: {ev}"
                )

    @pytest.mark.parametrize("seed", range(20))
    def test_isolation_flags_blame_a_real_state_change(self, seed):
        """Second-pass UNSAFE_ISOLATION events must name a wing, and
        that wing must actually change the allocation state of the
        flagged location (that is what the intersection tested)."""
        prog = tiny_trace(seed, ADDR_OPS)
        part = partition_fixed(prog, 2)
        guard = ButterflyAddrCheck(use_idempotent_filter=False)
        for ev in error_events(guard, part):
            if ev["stage"] != "second":
                continue
            assert ev["wing"] is not None, ev
            wing_block = part.block(*ev["wing"])
            assert changes_alloc_state(wing_block, ev["location"]), ev

    @pytest.mark.parametrize("seed", range(10))
    def test_optimized_and_reference_attribute_identically(self, seed):
        prog = tiny_trace(seed, ADDR_OPS, threads=3)
        part = partition_fixed(prog, 2)

        def keyed(events):
            return sorted(
                (ev["kind"], ev["location"], tuple(ev["ref"]),
                 ev["stage"],
                 tuple(ev["wing"]) if ev["wing"] else None)
                for ev in events
            )

        opt = error_events(
            ButterflyAddrCheck(optimized=True, use_idempotent_filter=False),
            partition_fixed(prog, 2),
        )
        ref = error_events(
            ButterflyAddrCheck(optimized=False, use_idempotent_filter=False),
            part,
        )
        assert keyed(opt) == keyed(ref)


class TestRaceCheckProvenance:
    @pytest.mark.parametrize("seed", range(20))
    def test_conflicts_blame_a_wing_that_touches_the_location(self, seed):
        prog = tiny_trace(seed, RACE_OPS, threads=3)
        part = partition_fixed(prog, 2)
        for ev in error_events(ButterflyRaceCheck(), part):
            assert_structural(part, ev)
            assert ev["stage"] == "second", ev
            assert ev["conflict"] in ("write-write", "read-write"), ev
            assert ev["wing"] is not None, ev
            wing_block = part.block(*ev["wing"])
            body_block = part.block(ev["epoch"], ev["thread"])
            # The body side touches the location at the flagged index,
            # and the blamed wing touches it concurrently -- i.e. both
            # accesses exist and sit in wing-adjacent blocks, which is
            # exactly the window's potentially-concurrent criterion.
            body_instr = body_block.instrs[ev["index"]]
            loc = ev["location"]
            assert (
                loc in body_instr.srcs
                or body_instr.dst == loc
                or (body_instr.op in (Op.MALLOC, Op.FREE)
                    and loc in body_instr.extent)
            ), ev
            side = (
                "reads"
                if ev["conflict"] == "read-write"
                and touches(wing_block, loc, "reads")
                else "writes"
            )
            assert touches(wing_block, loc, side), ev


class TestTaintCheckProvenance:
    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("mode", ["relaxed", "sc"])
    def test_tainted_jumps_name_a_real_jump(self, seed, mode):
        prog = tiny_trace(seed, TAINT_OPS)
        part = partition_fixed(prog, 2)
        for ev in error_events(ButterflyTaintCheck(mode=mode), part):
            assert_structural(part, ev)
            assert ev["kind"] == "tainted-jump", ev
            assert ev["stage"] == "second", ev
            block = part.block(ev["epoch"], ev["thread"])
            instr = block.instrs[ev["index"]]
            assert instr.op is Op.JUMP, ev
            assert ev["location"] in instr.srcs, ev
