"""Tests for epoch-boundary checkpoint/resume."""

import os
import pickle
import random

import pytest

from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.errors import CheckpointError
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.obs import Recorder
from repro.obs.recorder import normalize_events
from repro.resilience import (
    Checkpointer,
    load_checkpoint,
    save_checkpoint,
)
from repro.trace.generator import simulated_alloc_program


def _program(seed=5, threads=3, events=120):
    return simulated_alloc_program(
        random.Random(seed),
        num_threads=threads,
        total_events=events,
        num_locations=8,
        inject_error_rate=0.2,
    )


def _fingerprint(guard, stats):
    return (
        (
            stats.epochs_processed,
            stats.first_pass_instructions,
            stats.second_pass_instructions,
            stats.meets,
            stats.wing_summaries_combined,
        ),
        [(r.kind, r.location, r.ref, r.block, r.detail) for r in guard.errors],
        (dict(guard.sos._states), guard.sos._frontier),
    )


def _run_uninterrupted(part):
    guard = ButterflyAddrCheck()
    stats = ButterflyEngine(guard).run(part)
    return _fingerprint(guard, stats)


META = {"benchmark": "X", "epoch_size": 8, "seed": 5}


class TestSaveLoadRoundtrip:
    def test_resume_matches_uninterrupted(self, tmp_path):
        part = partition_by_global_order(_program(), 8)
        reference = _run_uninterrupted(part)
        path = str(tmp_path / "run.ckpt")

        # Kill the run after feeding epoch 2 (checkpoint covers epoch 1).
        guard = ButterflyAddrCheck()
        engine = ButterflyEngine(guard)
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.attach(part)
        for lid in range(3):
            engine.feed_epoch(lid)

        ck = load_checkpoint(path)
        assert ck.meta == META
        assert ck.next_epoch == 3
        resumed = ButterflyEngine(ck.analysis)
        resumed.attach(part)
        ck.restore_into(resumed)
        for lid in range(ck.next_epoch, part.num_epochs):
            resumed.feed_epoch(lid)
        resumed.finish()
        assert _fingerprint(ck.analysis, resumed.stats) == reference

    def test_resume_from_every_boundary(self, tmp_path):
        """Killing at ANY epoch boundary resumes bit-identically."""
        part = partition_by_global_order(_program(events=80), 6)
        reference = _run_uninterrupted(part)
        # Feeding only epoch 0 commits nothing (no checkpoint yet), so
        # the earliest killable boundary is after feeding two epochs.
        for stop_after in range(2, part.num_epochs):
            path = str(tmp_path / f"b{stop_after}.ckpt")
            engine = ButterflyEngine(ButterflyAddrCheck())
            engine.enable_checkpoints(Checkpointer(path, META))
            engine.attach(part)
            for lid in range(stop_after):
                engine.feed_epoch(lid)
            ck = load_checkpoint(path)
            resumed = ButterflyEngine(ck.analysis)
            resumed.attach(part)
            ck.restore_into(resumed)
            for lid in range(ck.next_epoch, part.num_epochs):
                resumed.feed_epoch(lid)
            resumed.finish()
            assert (
                _fingerprint(ck.analysis, resumed.stats) == reference
            ), f"diverged when killed after epoch {stop_after - 1}"

    def test_checkpoint_strips_live_recorder(self, tmp_path):
        # A live recorder (open file sink) must not poison the pickle,
        # and must still be attached after the save.
        part = partition_by_global_order(_program(events=60), 8)
        rec = Recorder()
        guard = ButterflyAddrCheck()
        engine = ButterflyEngine(guard, recorder=rec)
        path = str(tmp_path / "rec.ckpt")
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.attach(part)
        for lid in range(part.num_epochs):
            engine.feed_epoch(lid)
        engine.finish()
        assert guard.recorder is rec
        ck = load_checkpoint(path)
        # The restored analysis fell back to the class default.
        assert "recorder" not in ck.analysis.__dict__
        assert rec.counters["resilience.checkpoints"] >= 1
        assert any(
            ev["ev"] == "resilience.checkpoint" for ev in rec.events
        )


class TestStreamedResume:
    """Checkpoint/resume over a streamed feed: the checkpoint carries
    the block window, so a resume never needs the materialized trace.

    References are themselves streamed runs: streamed mode bounds the
    SOS history, so its retained-state fingerprint differs (by design)
    from a materialized run's full history even though every error,
    stat, and frontier state is identical.
    """

    def _run_uninterrupted_streamed(self, part):
        from repro.core.stream import PartitionSource

        guard = ButterflyAddrCheck()
        stats = ButterflyEngine(guard).run_source(PartitionSource(part))
        return _fingerprint(guard, stats)

    def _feed_stream(self, engine, source, start, stop_after=None):
        rows = source.epochs(start=start)
        try:
            for lid, row in enumerate(rows, start=start):
                if stop_after is not None and lid >= stop_after:
                    return
                engine.feed_blocks(lid, row)
        finally:
            close = getattr(rows, "close", None)
            if close is not None:
                close()
        engine.finish()

    def test_streamed_resume_matches_uninterrupted(self, tmp_path):
        from repro.core.stream import PartitionSource

        part = partition_by_global_order(_program(), 8)
        reference = self._run_uninterrupted_streamed(part)
        path = str(tmp_path / "stream.ckpt")

        engine = ButterflyEngine(ButterflyAddrCheck())
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.attach_source(PartitionSource(part))
        self._feed_stream(engine, PartitionSource(part), 0, stop_after=3)

        ck = load_checkpoint(path)
        assert ck.next_epoch == 3
        resumed = ButterflyEngine(ck.analysis)
        resumed.attach_source(PartitionSource(part), resumed=True)
        ck.restore_into(resumed)
        self._feed_stream(resumed, PartitionSource(part), ck.next_epoch)
        assert _fingerprint(ck.analysis, resumed.stats) == reference

    def test_streamed_resume_from_a_version_2_file(self, tmp_path):
        from repro.trace.serialize import iter_load, save_stream_file

        part = partition_by_global_order(_program(), 8)
        reference = self._run_uninterrupted_streamed(part)
        trace = str(tmp_path / "trace.stream.jsonl")
        save_stream_file(partition_by_global_order(_program(), 8), trace)
        path = str(tmp_path / "file.ckpt")

        engine = ButterflyEngine(ButterflyAddrCheck())
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.attach_source(iter_load(trace))
        self._feed_stream(engine, iter_load(trace), 0, stop_after=3)

        ck = load_checkpoint(path)
        resumed = ButterflyEngine(ck.analysis)
        source = iter_load(trace)
        resumed.attach_source(source, resumed=True)
        ck.restore_into(resumed)
        # The resume seeks the reader: epochs before the checkpoint are
        # skipped at the file layer, never decoded.
        self._feed_stream(resumed, source, ck.next_epoch)
        assert _fingerprint(ck.analysis, resumed.stats) == reference

    def test_legacy_checkpoint_rebuilds_window_from_partition(
        self, tmp_path
    ):
        # Checkpoints written before the engine kept an explicit block
        # window resume fine against a materialized partition.
        part = partition_by_global_order(_program(), 8)
        reference = _run_uninterrupted(part)
        path = str(tmp_path / "legacy.ckpt")
        engine = ButterflyEngine(ButterflyAddrCheck())
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.attach(part)
        for lid in range(3):
            engine.feed_epoch(lid)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        del payload["engine"]["window"]
        del payload["engine"]["window_high_water"]
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)

        ck = load_checkpoint(path)
        resumed = ButterflyEngine(ck.analysis)
        resumed.attach(part)
        ck.restore_into(resumed)
        for lid in range(ck.next_epoch, part.num_epochs):
            resumed.feed_epoch(lid)
        resumed.finish()
        assert _fingerprint(ck.analysis, resumed.stats) == reference

    def test_legacy_checkpoint_refuses_stream_resume(self, tmp_path):
        from repro.core.stream import PartitionSource

        part = partition_by_global_order(_program(), 8)
        path = str(tmp_path / "legacy2.ckpt")
        engine = ButterflyEngine(ButterflyAddrCheck())
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.attach(part)
        for lid in range(3):
            engine.feed_epoch(lid)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        del payload["engine"]["window"]
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)

        ck = load_checkpoint(path)
        resumed = ButterflyEngine(ck.analysis)
        resumed.attach_source(PartitionSource(part), resumed=True)
        with pytest.raises(CheckpointError, match="materialized"):
            ck.restore_into(resumed)

    def test_streamed_stitched_log_equals_uninterrupted(self, tmp_path):
        from repro.core.stream import PartitionSource

        part = partition_by_global_order(_program(events=80), 8)
        ref_rec = Recorder()
        engine = ButterflyEngine(ButterflyAddrCheck(), recorder=ref_rec)
        engine.run_source(PartitionSource(part))
        reference = normalize_events(ref_rec.events)

        path = str(tmp_path / "slog.ckpt")
        stopped_rec = Recorder()
        engine = ButterflyEngine(ButterflyAddrCheck(), recorder=stopped_rec)
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.attach_source(PartitionSource(part))
        self._feed_stream(engine, PartitionSource(part), 0, stop_after=3)

        ck = load_checkpoint(path)
        prefix = [
            e for e in stopped_rec.events if e["seq"] <= ck.events_emitted
        ]
        resumed_rec = Recorder()
        resumed = ButterflyEngine(ck.analysis, recorder=resumed_rec)
        resumed.attach_source(PartitionSource(part), resumed=True)
        ck.restore_into(resumed)
        self._feed_stream(resumed, PartitionSource(part), ck.next_epoch)
        assert normalize_events(prefix + resumed_rec.events) == reference


class TestResumeEventLog:
    """A resumed run's event log must be the exact suffix of the
    uninterrupted log: no duplicate ``run.attach``, no re-counted
    epochs for work completed before the kill."""

    def _uninterrupted(self, part):
        rec = Recorder()
        engine = ButterflyEngine(ButterflyAddrCheck(), recorder=rec)
        engine.attach(part)
        for lid in range(part.num_epochs):
            engine.feed_epoch(lid)
        engine.finish()
        return rec

    def _stitched(self, part, path, stop_after):
        """Kill after ``stop_after`` fed epochs, resume, and stitch
        checkpoint-prefix + resumed log."""
        stopped_rec = Recorder()
        engine = ButterflyEngine(ButterflyAddrCheck(), recorder=stopped_rec)
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.attach(part)
        for lid in range(stop_after):
            engine.feed_epoch(lid)

        ck = load_checkpoint(path)
        prefix = [
            e for e in stopped_rec.events if e["seq"] <= ck.events_emitted
        ]
        resumed_rec = Recorder()
        resumed = ButterflyEngine(ck.analysis, recorder=resumed_rec)
        resumed.attach(part, resumed=True)
        ck.restore_into(resumed)
        for lid in range(ck.next_epoch, part.num_epochs):
            resumed.feed_epoch(lid)
        resumed.finish()
        return prefix + resumed_rec.events

    def test_stitched_log_equals_uninterrupted(self, tmp_path):
        part = partition_by_global_order(_program(events=80), 8)
        reference = normalize_events(self._uninterrupted(part).events)
        stitched = self._stitched(part, str(tmp_path / "log.ckpt"), 3)
        assert normalize_events(stitched) == reference

    def test_every_kill_boundary_stitches_identically(self, tmp_path):
        part = partition_by_global_order(_program(events=60), 6)
        reference = normalize_events(self._uninterrupted(part).events)
        for stop_after in range(2, part.num_epochs):
            stitched = self._stitched(
                part, str(tmp_path / f"log{stop_after}.ckpt"), stop_after
            )
            assert normalize_events(stitched) == reference, (
                f"event log diverged when killed after epoch "
                f"{stop_after - 1}"
            )

    def test_no_duplicate_run_attach(self, tmp_path):
        part = partition_by_global_order(_program(events=60), 8)
        stitched = self._stitched(part, str(tmp_path / "dup.ckpt"), 3)
        attaches = [e for e in stitched if e["ev"] == "run.attach"]
        assert len(attaches) == 1

    def test_checkpoint_records_events_emitted(self, tmp_path):
        part = partition_by_global_order(_program(events=60), 8)
        rec = Recorder()
        engine = ButterflyEngine(ButterflyAddrCheck(), recorder=rec)
        path = str(tmp_path / "seq.ckpt")
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.attach(part)
        for lid in range(3):
            engine.feed_epoch(lid)
        ck = load_checkpoint(path)
        assert 0 < ck.events_emitted <= rec.seq

    def test_old_checkpoints_default_to_zero(self, tmp_path):
        # Pre-fix checkpoints lack the field; resume must still work.
        part = partition_by_global_order(_program(events=60), 8)
        engine = ButterflyEngine(ButterflyAddrCheck())
        path = str(tmp_path / "old.ckpt")
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.attach(part)
        for lid in range(3):
            engine.feed_epoch(lid)
        import pickle

        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        del payload["engine"]["events_emitted"]
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        ck = load_checkpoint(path)
        assert ck.events_emitted == 0
        resumed = ButterflyEngine(ck.analysis)
        resumed.attach(part, resumed=True)
        ck.restore_into(resumed)
        for lid in range(ck.next_epoch, part.num_epochs):
            resumed.feed_epoch(lid)
        resumed.finish()


class TestCheckpointerPolicy:
    def test_every_n_epochs(self, tmp_path):
        part = partition_by_global_order(_program(), 8)
        path = str(tmp_path / "every.ckpt")
        cp = Checkpointer(path, META, every=3)
        engine = ButterflyEngine(ButterflyAddrCheck())
        engine.enable_checkpoints(cp)
        engine.run(part)
        # Epochs 2, 5, 8, ... -> one write per completed group of 3.
        assert cp.written == part.num_epochs // 3

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="interval"):
            Checkpointer(str(tmp_path / "x.ckpt"), every=0)

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        part = partition_by_global_order(_program(events=60), 8)
        path = str(tmp_path / "atomic.ckpt")
        engine = ButterflyEngine(ButterflyAddrCheck())
        engine.enable_checkpoints(Checkpointer(path, META))
        engine.run(part)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")


class TestVerify:
    def _checkpoint(self, tmp_path):
        part = partition_by_global_order(_program(events=60), 8)
        path = str(tmp_path / "v.ckpt")
        engine = ButterflyEngine(ButterflyAddrCheck())
        engine.attach(part)
        engine.feed_epoch(0)
        engine.feed_epoch(1)
        save_checkpoint(path, engine, META)
        return load_checkpoint(path)

    def test_matching_meta_accepted(self, tmp_path):
        self._checkpoint(tmp_path).verify(dict(META))

    def test_mismatch_names_every_differing_key(self, tmp_path):
        ck = self._checkpoint(tmp_path)
        bad = dict(META, epoch_size=16, seed=9)
        with pytest.raises(CheckpointError) as exc_info:
            ck.verify(bad)
        message = str(exc_info.value)
        assert "epoch_size: checkpoint=8 run=16" in message
        assert "seed: checkpoint=5 run=9" in message

    def test_restore_requires_the_checkpoints_analysis(self, tmp_path):
        ck = self._checkpoint(tmp_path)
        part = partition_by_global_order(_program(events=60), 8)
        stranger = ButterflyEngine(ButterflyAddrCheck())
        stranger.attach(part)
        with pytest.raises(CheckpointError, match="analysis"):
            ck.restore_into(stranger)


class TestLoadFailures:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(CheckpointError, match="not a readable checkpoint"):
            load_checkpoint(str(path))

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "alien.ckpt"
        path.write_bytes(pickle.dumps({"format": "other", "version": 1}))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(str(path))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_bytes(
            pickle.dumps(
                {"format": "repro-checkpoint", "version": 99, "meta": {},
                 "engine": {}}
            )
        )
        with pytest.raises(CheckpointError, match="version 99"):
            load_checkpoint(str(path))
