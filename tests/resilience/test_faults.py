"""Tests for the deterministic fault injector (``repro.resilience.faults``)."""

import pickle

import pytest

from repro.errors import ResilienceError
from repro.resilience import (
    FAULT_KINDS,
    CorruptedResult,
    FaultPlan,
    InjectedFault,
    result_is_valid,
)
from repro.resilience.faults import TRANSPORT_FAULT_KINDS, faulted_apply


class TestFaultPlanParse:
    def test_single_kind(self):
        plan = FaultPlan.parse("crash=0.05")
        assert plan.crash == 0.05
        assert plan.hang == plan.kill == plan.corrupt == 0.0
        assert plan.seed == 0

    def test_full_spec(self):
        plan = FaultPlan.parse("crash=0.05,hang=0.02,corrupt=0.1,seed=7,hang_s=0.5")
        assert (plan.crash, plan.hang, plan.corrupt) == (0.05, 0.02, 0.1)
        assert plan.seed == 7
        assert plan.hang_s == 0.5

    def test_whitespace_tolerated(self):
        plan = FaultPlan.parse(" kill = 0.01 , seed = 3 ")
        assert plan.kill == 0.01
        assert plan.seed == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault spec key"):
            FaultPlan.parse("explode=0.5")

    def test_bad_value_rejected(self):
        with pytest.raises(ResilienceError, match="bad fault spec value"):
            FaultPlan.parse("crash=lots")

    def test_missing_equals_rejected(self):
        with pytest.raises(ResilienceError, match="expected key=value"):
            FaultPlan.parse("crash")

    def test_no_fault_kind_rejected(self):
        with pytest.raises(ResilienceError, match="names no fault kind"):
            FaultPlan.parse("seed=3")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ResilienceError, match=r"in \[0, 1\]"):
            FaultPlan.parse("crash=1.5")

    def test_rates_summing_past_one_rejected(self):
        with pytest.raises(ResilienceError, match="sum to at most 1"):
            FaultPlan.parse("crash=0.6,corrupt=0.6")


class TestFaultPlanDecide:
    def test_pure_and_repeatable(self):
        plan = FaultPlan(crash=0.2, hang=0.2, kill=0.2, corrupt=0.2, seed=9)
        decisions = [plan.decide((b, i), a)
                     for b in range(5) for i in range(5) for a in range(3)]
        again = [plan.decide((b, i), a)
                 for b in range(5) for i in range(5) for a in range(3)]
        assert decisions == again

    def test_certain_fault(self):
        plan = FaultPlan(crash=1.0)
        assert all(
            plan.decide((b, i), a) == "crash"
            for b in range(3) for i in range(3) for a in range(3)
        )

    def test_zero_rates_never_fault(self):
        plan = FaultPlan()
        assert all(
            plan.decide((b, i), a) is None
            for b in range(10) for i in range(10) for a in range(2)
        )

    def test_rates_roughly_respected(self):
        plan = FaultPlan(crash=0.25, seed=1)
        n = 4000
        hits = sum(plan.decide((0, i), 0) == "crash" for i in range(n))
        assert 0.18 < hits / n < 0.32

    def test_attempt_changes_the_draw(self):
        # Retries must not deterministically re-fault: the decision for
        # (key, attempt+1) is an independent draw.
        plan = FaultPlan(crash=0.5, seed=4)
        decisions = {plan.decide((1, 1), a) for a in range(12)}
        assert decisions == {"crash", None}

    def test_decisions_survive_pickling(self):
        # Plans cross the process-pool boundary; the copy must decide
        # identically (no reliance on per-process hash salt).
        plan = FaultPlan(crash=0.3, corrupt=0.3, seed=11)
        clone = pickle.loads(pickle.dumps(plan))
        keys = [((b, i), a) for b in range(4) for i in range(4) for a in range(2)]
        assert [plan.decide(k, a) for k, a in keys] == [
            clone.decide(k, a) for k, a in keys
        ]

    def test_kinds_constant_matches_plan_fields(self):
        plan = FaultPlan(crash=0.1, hang=0.1, kill=0.1, corrupt=0.1)
        assert all(hasattr(plan, k) for k in FAULT_KINDS)
        assert plan.total_rate == pytest.approx(0.4)


class TestTransportFaults:
    def test_parse_transport_kinds(self):
        plan = FaultPlan.parse(
            "disconnect=0.1,trunc_frame=0.05,corrupt_bytes=0.02,"
            "stall=0.01,stall_s=1.5,seed=11"
        )
        assert plan.disconnect == 0.1
        assert plan.trunc_frame == 0.05
        assert plan.corrupt_bytes == 0.02
        assert plan.stall == 0.01
        assert plan.stall_s == 1.5
        assert plan.seed == 11
        assert plan.total_transport_rate == pytest.approx(0.18)
        # Transport rates never leak into the compute-fault budget.
        assert plan.total_rate == 0.0

    def test_families_validated_independently(self):
        # 0.9 compute + 0.9 transport is fine: each family's dice are
        # rolled separately, so each sum only has to fit in [0, 1].
        plan = FaultPlan(crash=0.9, disconnect=0.9)
        assert plan.total_rate == pytest.approx(0.9)
        assert plan.total_transport_rate == pytest.approx(0.9)
        with pytest.raises(ResilienceError, match="sum to at most 1"):
            FaultPlan(disconnect=0.6, stall=0.6)
        with pytest.raises(ResilienceError, match=r"in \[0, 1\]"):
            FaultPlan(trunc_frame=-0.1)

    def test_pure_and_repeatable(self):
        plan = FaultPlan(
            disconnect=0.2, trunc_frame=0.2, corrupt_bytes=0.2,
            stall=0.2, seed=9,
        )
        keys = [((d, e), a)
                for d in range(5) for e in range(5) for a in range(3)]
        first = [plan.decide_transport(k, a) for k, a in keys]
        again = [plan.decide_transport(k, a) for k, a in keys]
        assert first == again
        assert set(first) <= set(TRANSPORT_FAULT_KINDS) | {None}

    def test_uncorrelated_with_compute_dice(self):
        # Same seed, same keys: the transport draw must not mirror the
        # compute draw, or mixed plans would fault in lockstep.
        plan = FaultPlan(crash=0.5, disconnect=0.5, seed=2)
        keys = [((d, e), 0) for d in range(20) for e in range(20)]
        compute = [plan.decide(k, a) is not None for k, a in keys]
        transport = [
            plan.decide_transport(k, a) is not None for k, a in keys
        ]
        agree = sum(c == t for c, t in zip(compute, transport))
        assert 0.3 < agree / len(keys) < 0.7

    def test_attempt_rerolls_the_dice(self):
        # A reconnecting producer must not be doomed to re-fault on the
        # same epoch forever.
        plan = FaultPlan(disconnect=0.5, seed=4)
        decisions = {
            plan.decide_transport((1, 1), a) for a in range(12)
        }
        assert decisions == {"disconnect", None}

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(crash=0.5, seed=1)  # compute-only plan
        assert all(
            plan.decide_transport((d, e), 0) is None
            for d in range(10) for e in range(10)
        )

    def test_rates_roughly_respected(self):
        plan = FaultPlan(trunc_frame=0.25, seed=1)
        n = 4000
        hits = sum(
            plan.decide_transport((0, i), 0) == "trunc_frame"
            for i in range(n)
        )
        assert 0.18 < hits / n < 0.32

    def test_decisions_survive_pickling(self):
        plan = FaultPlan(disconnect=0.3, corrupt_bytes=0.3, seed=11)
        clone = pickle.loads(pickle.dumps(plan))
        keys = [((d, e), a)
                for d in range(4) for e in range(4) for a in range(2)]
        assert [plan.decide_transport(k, a) for k, a in keys] == [
            clone.decide_transport(k, a) for k, a in keys
        ]

    def test_kinds_constant_matches_plan_fields(self):
        plan = FaultPlan()
        assert all(hasattr(plan, k) for k in TRANSPORT_FAULT_KINDS)


def _consume(values):
    """A non-reentrant work unit: drains its context, like the
    AddrCheck scanner consumes its running LSOS."""
    total = sum(values)
    values.clear()
    return total


class TestFaultedApply:
    def test_no_fault_executes_normally(self):
        plan = FaultPlan()  # never faults
        data = [1, 2, 3]
        result = faulted_apply((_consume, (data,), plan, (0, 0), 0, False))
        assert result == 6
        assert data == []  # the real args were used

    def test_crash_raises_before_executing(self):
        plan = FaultPlan(crash=1.0)
        data = [1, 2, 3]
        with pytest.raises(InjectedFault) as exc_info:
            faulted_apply((_consume, (data,), plan, (2, 5), 1, False))
        assert exc_info.value.key == (2, 5)
        assert exc_info.value.attempt == 1
        assert data == [1, 2, 3]  # untouched: the retry needs it pristine

    def test_corrupt_returns_marker_without_executing(self):
        plan = FaultPlan(corrupt=1.0)
        data = [1, 2, 3]
        result = faulted_apply((_consume, (data,), plan, (0, 1), 0, False))
        assert isinstance(result, CorruptedResult)
        assert not result_is_valid(result)
        assert data == [1, 2, 3]  # the unit's work is lost, args pristine

    def test_hang_computes_on_a_private_copy(self):
        # A hung unit may outlive its timeout and race the retry that
        # replaced it, so it must never touch the shared args.
        plan = FaultPlan(hang=1.0, hang_s=0.0)
        data = [1, 2, 3]
        result = faulted_apply((_consume, (data,), plan, (0, 0), 0, False))
        assert result == 6
        assert data == [1, 2, 3]

    def test_kill_downgrades_to_crash_without_allow_kill(self):
        # os._exit must never take the coordinating process down.
        plan = FaultPlan(kill=1.0)
        with pytest.raises(InjectedFault):
            faulted_apply((_consume, ([1],), plan, (0, 0), 0, False))

    def test_result_is_valid_accepts_ordinary_values(self):
        assert result_is_valid(None)
        assert result_is_valid(0)
        assert result_is_valid([1, 2])
        assert not result_is_valid(CorruptedResult((0, 0), 0))
