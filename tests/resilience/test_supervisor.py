"""Tests for the supervised backend (retry, timeout, healing, ladder)."""

import time
from dataclasses import dataclass

import pytest

from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.core.parallel import (
    SerialBackend,
    ThreadPoolBackend,
    ProcessPoolBackend,
)
from repro.errors import ResilienceError
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.obs import Recorder
from repro.resilience import (
    DEGRADATION_LADDER,
    FaultPlan,
    RetryPolicy,
    SupervisedBackend,
)

import random

from repro.trace.generator import simulated_alloc_program

#: Zero-delay policy so retry tests don't sleep.
FAST = RetryPolicy(backoff_base=0.0, jitter=0.0)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError("boom")


@dataclass(frozen=True)
class KillFirstAttempt(FaultPlan):
    """Every task's first execution dies; retries are clean.

    Module-level so it pickles into process-pool workers.
    """

    def decide(self, key, attempt):
        return "kill" if attempt == 0 else None


@dataclass(frozen=True)
class CrashFirstAttempt(FaultPlan):
    def decide(self, key, attempt):
        return "crash" if attempt == 0 else None


@dataclass(frozen=True)
class CorruptFirstAttempt(FaultPlan):
    def decide(self, key, attempt):
        return "corrupt" if attempt == 0 else None


class TestBackendSurface:
    def test_name_and_capabilities_track_inner(self):
        backend = SupervisedBackend("threads")
        try:
            assert backend.name == "supervised:threads"
            assert backend.concurrent
            assert backend.shares_memory
        finally:
            backend.close()

    def test_serial_inner_not_concurrent(self):
        backend = SupervisedBackend("serial")
        assert backend.name == "supervised:serial"
        assert not backend.concurrent

    def test_ladder_constant(self):
        assert DEGRADATION_LADDER == ("processes", "threads", "serial")

    def test_owns_a_backend_built_from_an_instance(self):
        inner = ThreadPoolBackend(max_workers=1)
        backend = SupervisedBackend(inner)
        assert backend.inner is inner
        backend.close()


class TestFaultFreeMapping:
    @pytest.mark.parametrize("inner", ["serial", "threads", "processes"])
    def test_matches_plain_backend(self, inner):
        items = [(i,) for i in range(16)]
        with SupervisedBackend(inner, policy=FAST, max_workers=2) as backend:
            assert backend.map_ordered(_square, items) == [
                i * i for i in range(16)
            ]

    @pytest.mark.parametrize("inner", ["serial", "threads"])
    def test_empty_batch(self, inner):
        with SupervisedBackend(inner, policy=FAST) as backend:
            assert backend.map_ordered(_square, []) == []


class TestRetries:
    @pytest.mark.parametrize("inner", ["serial", "threads"])
    def test_crash_first_attempt_recovers(self, inner):
        plan = CrashFirstAttempt()
        with SupervisedBackend(inner, policy=FAST, plan=plan) as backend:
            assert backend.map_ordered(_square, [(i,) for i in range(6)]) == [
                i * i for i in range(6)
            ]

    @pytest.mark.parametrize("inner", ["serial", "threads"])
    def test_corrupt_first_attempt_recovers(self, inner):
        plan = CorruptFirstAttempt()
        with SupervisedBackend(inner, policy=FAST, plan=plan) as backend:
            assert backend.map_ordered(_square, [(i,) for i in range(6)]) == [
                i * i for i in range(6)
            ]

    @pytest.mark.parametrize("inner", ["serial", "threads"])
    def test_permanent_fault_exhausts_retries(self, inner):
        plan = FaultPlan(crash=1.0)
        policy = RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0)
        with SupervisedBackend(inner, policy=policy, plan=plan) as backend:
            with pytest.raises(ResilienceError, match="max_retries=2"):
                backend.map_ordered(_square, [(1,), (2,)])

    def test_real_task_exception_retries_then_raises(self):
        # A genuine (non-injected) failure follows the same contract.
        policy = RetryPolicy(max_retries=1, backoff_base=0.0, jitter=0.0)
        with SupervisedBackend("threads", policy=policy) as backend:
            with pytest.raises(ResilienceError):
                backend.map_ordered(_boom, [(1,)])

    def test_retry_events_logged(self):
        rec = Recorder()
        plan = CrashFirstAttempt()
        with SupervisedBackend("threads", policy=FAST, plan=plan) as backend:
            backend.recorder = rec
            backend.map_ordered(_square, [(i,) for i in range(4)])
        assert rec.counters["resilience.faults"] >= 1
        assert rec.counters["resilience.faults.crash"] >= 1
        assert rec.counters["resilience.retries"] >= 1
        kinds = {ev["ev"] for ev in rec.events}
        assert {"resilience.fault", "resilience.retry"} <= kinds


_hang_state = {"armed": False}


def _hang_once(x):
    """Sleeps far past the test's task timeout on its first call only."""
    if not _hang_state["armed"]:
        _hang_state["armed"] = True
        time.sleep(1.0)
    return x * x


class TestTimeoutsAndHealing:
    def test_timed_out_task_is_retried_on_a_fresh_pool(self):
        _hang_state["armed"] = False
        rec = Recorder()
        policy = RetryPolicy(
            task_timeout=0.15, backoff_base=0.0, jitter=0.0, degrade_after=99
        )
        with SupervisedBackend(
            ThreadPoolBackend(max_workers=2), policy=policy
        ) as backend:
            backend.recorder = rec
            assert backend.map_ordered(_hang_once, [(i,) for i in range(4)]) == [
                0, 1, 4, 9
            ]
        assert rec.counters["resilience.faults.timeout"] >= 1
        assert rec.counters["resilience.pool_recycles"] >= 1
        assert any(
            ev["ev"] == "resilience.pool.recycle" and ev["reason"] == "timeout"
            for ev in rec.events
        )

    def test_broken_process_pool_is_recycled(self):
        rec = Recorder()
        policy = RetryPolicy(backoff_base=0.0, jitter=0.0, degrade_after=99)
        plan = KillFirstAttempt()
        with SupervisedBackend(
            ProcessPoolBackend(max_workers=2), policy=policy, plan=plan
        ) as backend:
            backend.recorder = rec
            assert backend.map_ordered(_square, [(i,) for i in range(3)]) == [
                0, 1, 4
            ]
        assert rec.counters["resilience.pool_recycles"] >= 1


class TestDegradationLadder:
    def test_threads_degrade_to_serial_mid_batch(self):
        _hang_state["armed"] = False
        rec = Recorder()
        policy = RetryPolicy(
            task_timeout=0.15, backoff_base=0.0, jitter=0.0, degrade_after=1
        )
        with SupervisedBackend(
            ThreadPoolBackend(max_workers=2), policy=policy
        ) as backend:
            backend.recorder = rec
            result = backend.map_ordered(_hang_once, [(i,) for i in range(5)])
            assert result == [0, 1, 4, 9, 16]
            assert isinstance(backend.inner, SerialBackend)
            assert backend.name == "supervised:serial"
            # The engine's fan-out contract was fixed at construction.
            assert backend.concurrent
        degrades = [ev for ev in rec.events if ev["ev"] == "resilience.degrade"]
        assert degrades == [
            {
                "seq": degrades[0]["seq"],
                "ev": "resilience.degrade",
                "from_backend": "threads",
                "to_backend": "serial",
                "after_failures": 1,
            }
        ]

    def test_processes_degrade_to_threads(self):
        rec = Recorder()
        policy = RetryPolicy(backoff_base=0.0, jitter=0.0, degrade_after=1)
        plan = KillFirstAttempt()
        with SupervisedBackend(
            ProcessPoolBackend(max_workers=2), policy=policy, plan=plan
        ) as backend:
            backend.recorder = rec
            assert backend.map_ordered(_square, [(i,) for i in range(4)]) == [
                0, 1, 4, 9
            ]
            assert isinstance(backend.inner, ThreadPoolBackend)
        assert any(
            ev["ev"] == "resilience.degrade"
            and ev["from_backend"] == "processes"
            and ev["to_backend"] == "threads"
            for ev in rec.events
        )

    def test_serial_cannot_degrade_further(self):
        backend = SupervisedBackend("serial")
        assert backend._degrade() is False


class TestEngineIntegration:
    def test_supervised_faulty_run_matches_fault_free(self):
        prog = simulated_alloc_program(
            random.Random(5),
            num_threads=3,
            total_events=120,
            num_locations=8,
            inject_error_rate=0.2,
        )
        part = partition_by_global_order(prog, 8)
        ref = ButterflyAddrCheck()
        ref_stats = ButterflyEngine(ref).run(part)

        plan = FaultPlan(crash=0.15, corrupt=0.1, seed=3)
        policy = RetryPolicy(max_retries=8, backoff_base=0.0, jitter=0.0)
        guard = ButterflyAddrCheck()
        with SupervisedBackend("threads", policy=policy, plan=plan) as backend:
            with ButterflyEngine(guard, backend=backend) as engine:
                stats = engine.run(part)
        assert stats == ref_stats
        assert [
            (r.kind, r.location, r.ref, r.block) for r in guard.errors
        ] == [(r.kind, r.location, r.ref, r.block) for r in ref.errors]

    def test_fault_provenance_carries_epoch_and_thread(self):
        prog = simulated_alloc_program(
            random.Random(5),
            num_threads=3,
            total_events=120,
            num_locations=8,
        )
        part = partition_by_global_order(prog, 8)
        rec = Recorder()
        plan = CrashFirstAttempt()
        policy = RetryPolicy(max_retries=8, backoff_base=0.0, jitter=0.0)
        guard = ButterflyAddrCheck()
        with SupervisedBackend("threads", policy=policy, plan=plan) as backend:
            with ButterflyEngine(
                guard, backend=backend, recorder=rec
            ) as engine:
                engine.run(part)
        faults = [ev for ev in rec.events if ev["ev"] == "resilience.fault"]
        assert faults
        assert all(
            ev["epoch"] is not None and ev["thread"] is not None
            for ev in faults
        )


class TestPooledBackendLeakFix:
    """Satellite: a failing batch must not leak in-flight futures."""

    def test_plain_path_discards_executor_on_failure(self):
        backend = ThreadPoolBackend(max_workers=2)
        backend.map_ordered(_square, [(1,)])
        with pytest.raises(ValueError, match="boom"):
            backend.map_ordered(_boom, [(i,) for i in range(8)])
        # The suspect executor was dropped; the next use builds a fresh
        # pool lazily instead of reusing one with abandoned futures.
        assert backend._executor is None
        assert backend.map_ordered(_square, [(3,)]) == [9]
        backend.close()

    def test_instrumented_path_discards_executor_on_failure(self):
        backend = ThreadPoolBackend(max_workers=2)
        backend.recorder = Recorder()
        with pytest.raises(ValueError, match="boom"):
            backend.map_ordered(_boom, [(i,) for i in range(8)])
        assert backend._executor is None
        backend.close()
