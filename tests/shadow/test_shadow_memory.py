"""Unit tests for the two-level shadow memory."""

import pytest

from repro.shadow.shadow_memory import ShadowMemory


class TestShadowMemory:
    def test_default_value(self):
        shadow = ShadowMemory(default=0)
        assert shadow.load(12345) == 0

    def test_store_load_round_trip(self):
        shadow = ShadowMemory()
        shadow.store(7, "allocated")
        assert shadow.load(7) == "allocated"

    def test_pages_allocated_lazily(self):
        shadow = ShadowMemory(page_size=16)
        assert shadow.resident_pages == 0
        shadow.load(100)
        assert shadow.resident_pages == 0  # loads never materialize
        shadow.store(100, 1)
        assert shadow.resident_pages == 1

    def test_distinct_pages(self):
        shadow = ShadowMemory(page_size=16)
        shadow.store(0, 1)
        shadow.store(16, 1)
        shadow.store(17, 1)
        assert shadow.resident_pages == 2

    def test_store_range(self):
        shadow = ShadowMemory(page_size=8)
        shadow.store_range(5, 10, 2)
        assert all(shadow.load(a) == 2 for a in range(5, 15))
        assert shadow.load(15) == 0

    def test_nonzero_items(self):
        shadow = ShadowMemory(page_size=4)
        shadow.store(9, 5)
        shadow.store(2, 0)  # default value: not reported
        assert list(shadow.nonzero_items()) == [(9, 5)]

    def test_stats_counters(self):
        shadow = ShadowMemory()
        shadow.load(1)
        shadow.store(1, 9)
        shadow.load(1)
        assert shadow.reads == 2
        assert shadow.writes == 1

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            ShadowMemory(page_size=0)
