"""Unit tests for the two-level shadow memory."""

import random

import pytest

from repro.shadow.shadow_memory import ShadowMemory


class TestShadowMemory:
    def test_default_value(self):
        shadow = ShadowMemory(default=0)
        assert shadow.load(12345) == 0

    def test_store_load_round_trip(self):
        shadow = ShadowMemory()
        shadow.store(7, "allocated")
        assert shadow.load(7) == "allocated"

    def test_pages_allocated_lazily(self):
        shadow = ShadowMemory(page_size=16)
        assert shadow.resident_pages == 0
        shadow.load(100)
        assert shadow.resident_pages == 0  # loads never materialize
        shadow.store(100, 1)
        assert shadow.resident_pages == 1

    def test_distinct_pages(self):
        shadow = ShadowMemory(page_size=16)
        shadow.store(0, 1)
        shadow.store(16, 1)
        shadow.store(17, 1)
        assert shadow.resident_pages == 2

    def test_store_range(self):
        shadow = ShadowMemory(page_size=8)
        shadow.store_range(5, 10, 2)
        assert all(shadow.load(a) == 2 for a in range(5, 15))
        assert shadow.load(15) == 0

    def test_store_range_counts_one_write_burst(self):
        shadow = ShadowMemory(page_size=8)
        shadow.store_range(0, 100, 3)
        assert shadow.writes == 1
        shadow.store_range(200, 1, 4)
        assert shadow.writes == 2
        shadow.store_range(300, 0, 5)  # empty range: no burst
        assert shadow.writes == 2

    def test_store_range_whole_page_fast_path(self):
        shadow = ShadowMemory(page_size=8)
        # Covers page 1 fully and pages 0/2 partially.
        shadow.store_range(6, 12, 7)
        assert shadow.resident_pages == 3
        assert all(shadow.load(a) == 7 for a in range(6, 18))
        assert shadow.load(5) == 0
        assert shadow.load(18) == 0

    def test_store_range_preserves_existing_neighbors(self):
        shadow = ShadowMemory(page_size=8)
        shadow.store(0, 1)
        shadow.store(7, 1)
        shadow.store_range(2, 4, 9)
        assert shadow.load(0) == 1
        assert shadow.load(7) == 1
        assert [shadow.load(a) for a in range(2, 6)] == [9, 9, 9, 9]

    def test_load_range(self):
        shadow = ShadowMemory(page_size=4)
        shadow.store_range(3, 5, 6)
        assert shadow.load_range(2, 8) == [0, 6, 6, 6, 6, 6, 0, 0]
        assert shadow.load_range(100, 3) == [0, 0, 0]
        assert shadow.load_range(0, 0) == []

    def test_load_range_counts_one_read_burst(self):
        shadow = ShadowMemory(page_size=4)
        reads_before = shadow.reads
        shadow.load_range(0, 64)
        assert shadow.reads == reads_before + 1
        shadow.load_range(0, 0)
        assert shadow.reads == reads_before + 1

    def test_range_round_trip_matches_scalar_ops(self):
        bulk = ShadowMemory(page_size=8)
        scalar = ShadowMemory(page_size=8)
        bulk.store_range(5, 20, "a")
        for addr in range(5, 25):
            scalar.store(addr, "a")
        assert bulk.load_range(0, 32) == [scalar.load(a) for a in range(32)]

    def test_nonzero_items(self):
        shadow = ShadowMemory(page_size=4)
        shadow.store(9, 5)
        shadow.store(2, 0)  # default value: not reported
        assert list(shadow.nonzero_items()) == [(9, 5)]

    def test_stats_counters(self):
        shadow = ShadowMemory()
        shadow.load(1)
        shadow.store(1, 9)
        shadow.load(1)
        assert shadow.reads == 2
        assert shadow.writes == 1

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            ShadowMemory(page_size=0)


class _ByteReference:
    """Per-byte model of ShadowMemory: a plain dict, no fast paths."""

    def __init__(self, default=0):
        self.default = default
        self.cells = {}

    def store(self, addr, value):
        self.cells[addr] = value

    def store_range(self, start, size, value):
        for addr in range(start, start + size):
            self.cells[addr] = value

    def load(self, addr):
        return self.cells.get(addr, self.default)

    def load_range(self, start, size):
        return [self.load(a) for a in range(start, start + size)]


class TestRangeDifferential:
    """The burst fast paths must be observationally identical to the
    per-byte reference, especially across page boundaries and for
    zero-size ranges."""

    def _diff_run(self, page_size, seed, ops=200, span=200):
        rng = random.Random(seed)
        shadow = ShadowMemory(page_size=page_size)
        reference = _ByteReference()
        for step in range(ops):
            start = rng.randrange(span)
            choice = rng.random()
            if choice < 0.35:
                # Sizes biased toward page-straddling and degenerate 0.
                size = rng.choice(
                    (0, 1, page_size - 1, page_size,
                     page_size + 1, 3 * page_size)
                )
                value = rng.randint(1, 9)
                shadow.store_range(start, size, value)
                reference.store_range(start, size, value)
            elif choice < 0.55:
                value = rng.randint(1, 9)
                shadow.store(start, value)
                reference.store(start, value)
            elif choice < 0.8:
                size = rng.choice((0, 1, page_size, 2 * page_size + 1))
                assert shadow.load_range(start, size) == \
                    reference.load_range(start, size), (step, start, size)
            else:
                assert shadow.load(start) == reference.load(start)
        full = span + 4 * page_size
        assert shadow.load_range(0, full) == reference.load_range(0, full)

    @pytest.mark.parametrize("page_size", [1, 2, 4, 8, 16])
    def test_random_bursts_match_per_byte_reference(self, page_size):
        for seed in range(4):
            self._diff_run(page_size, seed)

    def test_straddle_exactly_two_pages(self):
        shadow = ShadowMemory(page_size=8)
        shadow.store_range(7, 2, "x")  # last byte of page 0, first of 1
        assert shadow.load(7) == "x"
        assert shadow.load(8) == "x"
        assert shadow.load(6) == 0
        assert shadow.load(9) == 0

    def test_zero_size_range_touches_nothing(self):
        shadow = ShadowMemory(page_size=8)
        shadow.store_range(5, 0, "x")
        assert shadow.resident_pages == 0
        assert shadow.load(5) == 0
        assert shadow.load_range(5, 0) == []

    def test_negative_size_range_touches_nothing(self):
        shadow = ShadowMemory(page_size=8)
        shadow.store_range(5, -3, "x")
        assert shadow.resident_pages == 0
        assert shadow.load_range(5, -3) == []

    def test_whole_page_replacement_preserves_later_writes(self):
        # The whole-page fast path replaces the page list wholesale;
        # later scalar stores must land in the replaced list.
        shadow = ShadowMemory(page_size=4)
        shadow.store_range(4, 4, "a")  # exactly page 1
        shadow.store(5, "b")
        assert shadow.load_range(4, 4) == ["a", "b", "a", "a"]


class TestPageBackend:
    """Numpy int64 pages with transparent degradation to list pages."""

    def test_backend_stat_reflects_environment(self):
        from repro.core.columnar import HAVE_NUMPY

        shadow = ShadowMemory(default=0)
        expected = "numpy" if HAVE_NUMPY else "list"
        assert shadow.stats()["page_backend"] == expected

    def test_non_int_default_uses_list_pages(self):
        shadow = ShadowMemory(default=None)
        assert shadow.stats()["page_backend"] == "list"
        shadow.store(3, "x")
        assert shadow.load(3) == "x"
        assert shadow.load(4) is None

    def test_bool_default_uses_list_pages(self):
        # bool would come back 0/1 from an int64 page.
        shadow = ShadowMemory(default=False)
        assert shadow.stats()["page_backend"] == "list"
        shadow.store(0, True)
        assert shadow.load(0) is True

    def test_loads_return_plain_ints(self):
        shadow = ShadowMemory(page_size=8, default=0)
        shadow.store(5, 7)
        shadow.store_range(6, 4, 9)
        assert type(shadow.load(5)) is int
        for v in shadow.load_range(0, 16):
            assert type(v) is int
        for _, v in shadow.nonzero_items():
            assert type(v) is int

    def test_degrades_on_unrepresentable_store(self):
        from repro.core.columnar import HAVE_NUMPY

        shadow = ShadowMemory(page_size=8, default=0)
        shadow.store_range(0, 12, 3)
        before = shadow.stats()["page_backend"]
        assert before == ("numpy" if HAVE_NUMPY else "list")
        shadow.store(2, "tag")  # not int64-representable
        assert shadow.stats()["page_backend"] == "list"
        # Pre-degradation contents survive the conversion.
        assert shadow.load(2) == "tag"
        assert shadow.load(0) == 3 and shadow.load(11) == 3
        assert shadow.load_range(0, 12) == [3, 3, "tag"] + [3] * 9

    def test_degrades_on_huge_int(self):
        shadow = ShadowMemory(page_size=4, default=0)
        shadow.store(0, 1)
        big = 2**80
        shadow.store(1, big)
        assert shadow.stats()["page_backend"] == "list"
        assert shadow.load(1) == big
        assert shadow.load(0) == 1

    def test_degrades_on_range_store(self):
        shadow = ShadowMemory(page_size=4, default=0)
        shadow.store_range(0, 6, 2**70)
        assert shadow.stats()["page_backend"] == "list"
        assert shadow.load_range(0, 6) == [2**70] * 6

    def test_behavior_identical_across_backends(self):
        """Differential: the same operation sequence against an
        int-defaulted store (vector-eligible) and a list-forced store
        must read back identically."""
        rng = random.Random(23)
        vec = ShadowMemory(page_size=16, default=0)
        ref = ShadowMemory(page_size=16, default=0)
        ref._degrade()  # force list pages from the start
        for _ in range(300):
            op = rng.randrange(3)
            addr = rng.randrange(200)
            if op == 0:
                value = rng.randrange(-5, 6)
                vec.store(addr, value)
                ref.store(addr, value)
            elif op == 1:
                size = rng.randrange(1, 40)
                value = rng.randrange(-5, 6)
                vec.store_range(addr, size, value)
                ref.store_range(addr, size, value)
            else:
                size = rng.randrange(1, 40)
                assert vec.load_range(addr, size) == ref.load_range(
                    addr, size
                )
        assert list(vec.nonzero_items()) == list(ref.nonzero_items())
        for addr in range(250):
            assert vec.load(addr) == ref.load(addr)
