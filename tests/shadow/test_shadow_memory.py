"""Unit tests for the two-level shadow memory."""

import pytest

from repro.shadow.shadow_memory import ShadowMemory


class TestShadowMemory:
    def test_default_value(self):
        shadow = ShadowMemory(default=0)
        assert shadow.load(12345) == 0

    def test_store_load_round_trip(self):
        shadow = ShadowMemory()
        shadow.store(7, "allocated")
        assert shadow.load(7) == "allocated"

    def test_pages_allocated_lazily(self):
        shadow = ShadowMemory(page_size=16)
        assert shadow.resident_pages == 0
        shadow.load(100)
        assert shadow.resident_pages == 0  # loads never materialize
        shadow.store(100, 1)
        assert shadow.resident_pages == 1

    def test_distinct_pages(self):
        shadow = ShadowMemory(page_size=16)
        shadow.store(0, 1)
        shadow.store(16, 1)
        shadow.store(17, 1)
        assert shadow.resident_pages == 2

    def test_store_range(self):
        shadow = ShadowMemory(page_size=8)
        shadow.store_range(5, 10, 2)
        assert all(shadow.load(a) == 2 for a in range(5, 15))
        assert shadow.load(15) == 0

    def test_store_range_counts_one_write_burst(self):
        shadow = ShadowMemory(page_size=8)
        shadow.store_range(0, 100, 3)
        assert shadow.writes == 1
        shadow.store_range(200, 1, 4)
        assert shadow.writes == 2
        shadow.store_range(300, 0, 5)  # empty range: no burst
        assert shadow.writes == 2

    def test_store_range_whole_page_fast_path(self):
        shadow = ShadowMemory(page_size=8)
        # Covers page 1 fully and pages 0/2 partially.
        shadow.store_range(6, 12, 7)
        assert shadow.resident_pages == 3
        assert all(shadow.load(a) == 7 for a in range(6, 18))
        assert shadow.load(5) == 0
        assert shadow.load(18) == 0

    def test_store_range_preserves_existing_neighbors(self):
        shadow = ShadowMemory(page_size=8)
        shadow.store(0, 1)
        shadow.store(7, 1)
        shadow.store_range(2, 4, 9)
        assert shadow.load(0) == 1
        assert shadow.load(7) == 1
        assert [shadow.load(a) for a in range(2, 6)] == [9, 9, 9, 9]

    def test_load_range(self):
        shadow = ShadowMemory(page_size=4)
        shadow.store_range(3, 5, 6)
        assert shadow.load_range(2, 8) == [0, 6, 6, 6, 6, 6, 0, 0]
        assert shadow.load_range(100, 3) == [0, 0, 0]
        assert shadow.load_range(0, 0) == []

    def test_load_range_counts_one_read_burst(self):
        shadow = ShadowMemory(page_size=4)
        reads_before = shadow.reads
        shadow.load_range(0, 64)
        assert shadow.reads == reads_before + 1
        shadow.load_range(0, 0)
        assert shadow.reads == reads_before + 1

    def test_range_round_trip_matches_scalar_ops(self):
        bulk = ShadowMemory(page_size=8)
        scalar = ShadowMemory(page_size=8)
        bulk.store_range(5, 20, "a")
        for addr in range(5, 25):
            scalar.store(addr, "a")
        assert bulk.load_range(0, 32) == [scalar.load(a) for a in range(32)]

    def test_nonzero_items(self):
        shadow = ShadowMemory(page_size=4)
        shadow.store(9, 5)
        shadow.store(2, 0)  # default value: not reported
        assert list(shadow.nonzero_items()) == [(9, 5)]

    def test_stats_counters(self):
        shadow = ShadowMemory()
        shadow.load(1)
        shadow.store(1, 9)
        shadow.load(1)
        assert shadow.reads == 2
        assert shadow.writes == 1

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            ShadowMemory(page_size=0)
