"""Unit tests for the metadata TLB."""

import pytest

from repro.shadow.metadata_tlb import MetadataTLB


class TestMetadataTLB:
    def test_first_access_misses(self):
        tlb = MetadataTLB(hit_cycles=1, miss_cycles=20)
        assert tlb.lookup(0) == 20
        assert tlb.misses == 1

    def test_second_access_hits(self):
        tlb = MetadataTLB(hit_cycles=1, miss_cycles=20)
        tlb.lookup(0)
        assert tlb.lookup(8) == 1  # same page
        assert tlb.hits == 1

    def test_pages_distinguished(self):
        tlb = MetadataTLB(page_size=4096)
        tlb.lookup(0)
        assert tlb.lookup(4096) == tlb.miss_cycles

    def test_lru_eviction(self):
        tlb = MetadataTLB(entries=4, associativity=4, page_size=16)
        # Fill one set beyond associativity with same-set pages.
        for page in range(5):
            tlb.lookup(page * 16)
        # Page 0 was least recently used: evicted.
        assert tlb.lookup(0) == tlb.miss_cycles

    def test_lru_refresh_on_hit(self):
        tlb = MetadataTLB(entries=2, associativity=2, page_size=16)
        tlb.lookup(0)       # page 0
        tlb.lookup(32)      # page 2, same set (2 sets? entries/assoc=1 set)
        tlb.lookup(0)       # refresh page 0
        tlb.lookup(64)      # page 4: evicts page 2, not page 0
        assert tlb.lookup(0) == tlb.hit_cycles

    def test_flush(self):
        tlb = MetadataTLB()
        tlb.lookup(0)
        tlb.flush()
        assert tlb.lookup(0) == tlb.miss_cycles

    def test_hit_rate(self):
        tlb = MetadataTLB()
        assert tlb.hit_rate == 0.0
        tlb.lookup(0)
        tlb.lookup(0)
        assert tlb.hit_rate == 0.5

    def test_entries_must_divide(self):
        with pytest.raises(ValueError):
            MetadataTLB(entries=5, associativity=4)


class TestDegenerateGeometry:
    """Configs that used to crash with ZeroDivisionError on the first
    lookup must be rejected up front -- or, when legal (one set), work."""

    def test_zero_entries_rejected_at_construction(self):
        with pytest.raises(ValueError):
            MetadataTLB(entries=0)

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            MetadataTLB(entries=-4)

    def test_zero_associativity_rejected(self):
        with pytest.raises(ValueError):
            MetadataTLB(entries=4, associativity=0)

    def test_zero_page_size_rejected(self):
        with pytest.raises(ValueError):
            MetadataTLB(page_size=0)

    def test_entries_below_associativity_rejected(self):
        with pytest.raises(ValueError):
            MetadataTLB(entries=2, associativity=4)

    def test_fully_associative_single_set_works(self):
        # entries == associativity -> exactly one set; this is a legal
        # fully-associative TLB and every lookup lands in set 0.
        tlb = MetadataTLB(entries=4, associativity=4, page_size=16)
        for page in range(8):
            tlb.lookup(page * 16)
        assert tlb.hits + tlb.misses == 8
        assert tlb.lookup(7 * 16) == tlb.hit_cycles
