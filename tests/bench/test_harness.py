"""Tests for the experiment harness (small scale for speed)."""

import pytest

from repro.bench.harness import (
    PAPER_EPOCHS,
    SCALE,
    ExperimentConfig,
    ExperimentSuite,
)


@pytest.fixture(scope="module")
def small_suite():
    return ExperimentSuite(
        ExperimentConfig(
            events_per_thread=3000,
            thread_counts=(2,),
            epoch_small=128,
            epoch_large=1024,
        )
    )


class TestConfig:
    def test_default_epochs_are_scaled_paper_values(self):
        cfg = ExperimentConfig()
        assert cfg.epoch_small == PAPER_EPOCHS["8K"] // SCALE == 512
        assert cfg.epoch_large == PAPER_EPOCHS["64K"] // SCALE == 4096

    def test_epoch_labels(self):
        cfg = ExperimentConfig()
        assert cfg.epoch_label(512) == "8K"
        assert cfg.epoch_label(4096) == "64K"
        assert cfg.epoch_label(333) == "333"


class TestSuite:
    def test_program_cached(self, small_suite):
        a = small_suite.program("LU", 2)
        b = small_suite.program("LU", 2)
        assert a is b

    def test_baselines_shared_across_epoch_sizes(self, small_suite):
        r1 = small_suite.run("LU", 2, 128)
        r2 = small_suite.run("LU", 2, 1024)
        assert r1.seq_unmonitored is r2.seq_unmonitored
        assert r1.timesliced is r2.timesliced

    def test_run_cached(self, small_suite):
        a = small_suite.run("LU", 2, 128)
        b = small_suite.run("LU", 2, 128)
        assert a is b

    def test_record_normalization(self, small_suite):
        record = small_suite.run("LU", 2, 128)
        assert record.normalized(record.seq_unmonitored) == pytest.approx(1.0)
        assert record.butterfly_norm > 0
        assert record.parallel_norm < 1.0

    def test_precision_attached(self, small_suite):
        record = small_suite.run("LU", 2, 128)
        assert record.precision.false_negatives == 0
        assert record.precision.memory_ops > 0


class TestRunAll:
    def test_covers_the_grid_at_one_epoch_size(self):
        suite = ExperimentSuite(
            ExperimentConfig(
                events_per_thread=1500,
                thread_counts=(2,),
                epoch_small=64,
                epoch_large=512,
            )
        )
        runs = suite.run_all()
        from repro.workloads.registry import BENCHMARKS

        assert set(runs) == {
            (bench, 2, 512) for bench in BENCHMARKS
        }
        for record in runs.values():
            assert record.precision.false_negatives == 0
