"""Tests for the wall-clock perf baseline (``repro.bench.perf``)."""

import json

from repro.bench.perf import run_perf
from repro.cli import main


class TestRunPerf:
    def test_report_shape_and_json_output(self, tmp_path):
        out = tmp_path / "BENCH_test.json"
        report = run_perf(repeats=1, output_path=str(out))

        assert report["schema"] == 1
        assert set(report["workloads"]) == {
            "microbench_core",
            "reaching_defs",
            "shadow_store_range",
        }

        core = report["workloads"]["microbench_core"]
        assert set(core["runs"]) == {
            "reference_serial",
            "optimized_serial",
            "optimized_threads",
            "optimized_processes",
        }
        for entry in core["runs"].values():
            assert entry["best_s"] > 0
            assert entry["repeats"] == 1
        assert core["speedup_vs_baseline"] > 0

        # The file must round-trip as JSON and match the return value.
        on_disk = json.loads(out.read_text())
        assert on_disk["workloads"]["microbench_core"]["params"] == core["params"]

    def test_engine_stats_identical_across_configs(self, tmp_path):
        """Reference, optimized, and every backend do the same work."""
        report = run_perf(repeats=1)
        runs = report["workloads"]["microbench_core"]["runs"]
        ref = runs["reference_serial"]
        for name, entry in runs.items():
            assert entry["engine_stats"] == ref["engine_stats"], name
            assert entry["errors"] == ref["errors"], name


class TestBenchCLI:
    def test_bench_subcommand_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        rc = main(["bench", "--output", str(out), "--repeats", "1"])
        assert rc == 0
        report = json.loads(out.read_text())
        assert "microbench_core" in report["workloads"]
        assert "vs reference serial" in capsys.readouterr().out
