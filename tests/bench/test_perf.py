"""Tests for the wall-clock perf baseline (``repro.bench.perf``)."""

import json

from repro.bench.perf import run_perf
from repro.cli import main
from repro.core.columnar import HAVE_NUMPY
from repro.obs import read_events

# The columnar_10m workload at its 10M-event default takes minutes;
# every shape test disables it (0 skips the workload entirely) and
# TestColumnar10m exercises it at a small event count instead.


class TestRunPerf:
    def test_report_shape_and_json_output(self, tmp_path):
        out = tmp_path / "BENCH_test.json"
        report = run_perf(
            repeats=1, output_path=str(out), big_events=0,
            serve_streams=0,
            adaptive_events=0,
        )

        assert report["schema"] == 8
        assert set(report["workloads"]) == {
            "microbench_core",
            "reaching_defs",
            "shadow_store_range",
            "observability_overhead",
            "resilience_overhead",
            "streaming_overhead",
        }

        core = report["workloads"]["microbench_core"]
        assert set(core["runs"]) == {
            "reference_serial",
            "optimized_serial",
            "optimized_threads",
            "optimized_processes",
        }
        for entry in core["runs"].values():
            assert entry["best_s"] > 0
            assert entry["repeats"] == 1
        assert core["speedup_vs_baseline"] > 0

        # The file must round-trip as JSON and match the return value.
        on_disk = json.loads(out.read_text())
        assert on_disk["workloads"]["microbench_core"]["params"] == core["params"]

    def test_engine_stats_identical_across_configs(self, tmp_path):
        """Reference, optimized, and every backend do the same work."""
        report = run_perf(
            repeats=1, big_events=0, serve_streams=0,
            adaptive_events=0,
        )
        runs = report["workloads"]["microbench_core"]["runs"]
        ref = runs["reference_serial"]
        for name, entry in runs.items():
            assert entry["engine_stats"] == ref["engine_stats"], name
            assert entry["errors"] == ref["errors"], name

    def test_per_epoch_rows_consistent_with_run_totals(self):
        """The schema-2 ``per_epoch`` section must agree with the timed
        runs: same epoch count, instruction totals, and final cumulative
        error count."""
        report = run_perf(
            repeats=1, big_events=0, serve_streams=0,
            adaptive_events=0,
        )
        core = report["workloads"]["microbench_core"]
        per_epoch = core["per_epoch"]
        stats = core["runs"]["optimized_serial"]["engine_stats"]
        assert len(per_epoch) == stats["epochs_processed"]
        assert [row["epoch"] for row in per_epoch] == list(
            range(len(per_epoch))
        )
        assert (
            sum(row["instructions"] for row in per_epoch)
            == stats["first_pass_instructions"]
        )
        assert sum(row["meets"] for row in per_epoch) == stats["meets"]
        assert per_epoch[-1]["errors_total"] == core["runs"][
            "optimized_serial"
        ]["errors"]

    def test_events_path_captures_instrumented_replay(self, tmp_path):
        events_file = tmp_path / "bench_events.jsonl"
        run_perf(
            repeats=1, events_path=str(events_file), big_events=0,
            serve_streams=0,
            adaptive_events=0,
        )
        events = read_events(str(events_file))
        names = {ev["ev"] for ev in events}
        assert {"run.attach", "pass.first", "pass.second",
                "epoch.summary", "run.finish"} <= names

    def test_observability_overhead_entry(self):
        report = run_perf(
            repeats=1, big_events=0, serve_streams=0,
            adaptive_events=0,
        )
        obs = report["workloads"]["observability_overhead"]
        assert set(obs["runs"]) == {"disabled", "enabled"}
        assert obs["overhead_ratio"] > 0

    def test_resilience_overhead_entry(self):
        report = run_perf(
            repeats=1, big_events=0, serve_streams=0,
            adaptive_events=0,
        )
        res = report["workloads"]["resilience_overhead"]
        assert set(res["runs"]) == {"bare_serial", "supervised_serial"}
        assert res["overhead_ratio"] > 0

    def test_streaming_overhead_entry(self):
        report = run_perf(
            repeats=1, big_events=0, serve_streams=0,
            adaptive_events=0,
        )
        st = report["workloads"]["streaming_overhead"]
        assert set(st["runs"]) == {"materialized", "streamed"}
        assert st["overhead_ratio"] > 0
        assert 0 < st["window_high_water"] <= st["window_bound"]

    def test_streaming_overhead_file_run(self):
        report = run_perf(
            repeats=1, stream_file=True, big_events=0,
            serve_streams=0, adaptive_events=0,
        )
        st = report["workloads"]["streaming_overhead"]
        assert "stream_file" in st["runs"]
        assert st["runs"]["stream_file"]["best_s"] > 0

    def test_resilience_overhead_faulted_run(self):
        report = run_perf(
            repeats=1, inject_faults="crash=0.05,seed=7",
            big_events=0, serve_streams=0,
            adaptive_events=0,
        )
        res = report["workloads"]["resilience_overhead"]
        assert "faulted_serial" in res["runs"]
        assert res["params"]["inject_faults"] == "crash=0.05,seed=7"


class TestColumnar10m:
    def test_small_scale_runs_and_speedups(self):
        """The columnar workload (scaled down to stay fast) measures all
        four configurations in isolated subprocesses and reports the
        speedup ratios the acceptance criteria read."""
        from repro.bench.perf import _bench_columnar_10m

        entry = _bench_columnar_10m(40_000)
        if not HAVE_NUMPY:
            assert "skipped" in entry
            return
        assert set(entry["runs"]) == {
            "object_reference",
            "object_optimized",
            "columnar_serial",
            "columnar_processes",
        }
        ref = entry["runs"]["object_reference"]
        for name, run in entry["runs"].items():
            assert run["elapsed_s"] > 0, name
            assert run["peak_rss_kb"] > 0, name
            assert run["events"] == entry["params"]["total_events"], name
            # Every config does identical analysis work.
            assert run["engine_stats"] == ref["engine_stats"], name
            assert run["errors"] == ref["errors"], name
        assert set(entry["speedups"]) == {
            "columnar_serial_vs_reference",
            "columnar_serial_vs_object_optimized",
            "columnar_processes_vs_reference",
            "columnar_processes_vs_object_optimized",
        }
        assert all(v > 0 for v in entry["speedups"].values())


class TestTaintColumnar10m:
    def test_small_scale_runs_and_speedups(self):
        """The schema-6 taint workload (scaled down) measures all three
        configurations in isolated subprocesses; every config does the
        same analysis work and flags the same injected errors."""
        from repro.bench.perf import _bench_taint_columnar_10m

        entry = _bench_taint_columnar_10m(40_000)
        if not HAVE_NUMPY:
            assert "skipped" in entry
            return
        assert set(entry["runs"]) == {
            "taint_object",
            "taint_columnar_serial",
            "taint_columnar_processes",
        }
        ref = entry["runs"]["taint_object"]
        for name, run in entry["runs"].items():
            assert run["elapsed_s"] > 0, name
            assert run["peak_rss_kb"] > 0, name
            assert run["events"] == entry["params"]["total_events"], name
            assert run["engine_stats"] == ref["engine_stats"], name
            assert run["errors"] == ref["errors"], name
        assert set(entry["speedups"]) == {
            "taint_columnar_serial_vs_object",
            "taint_columnar_processes_vs_object",
        }
        assert all(v > 0 for v in entry["speedups"].values())
        assert entry["rss_ratio_columnar_vs_object"] > 0


class TestServeThroughput:
    def test_small_scale_runs_both_backends(self):
        """The schema-7 serve workload (scaled down) times both shard
        backends under concurrent producers and records the rates the
        docs quote."""
        from repro.bench.perf import _bench_serve_throughput

        entry = _bench_serve_throughput(streams=2, events_per_stream=600)
        assert set(entry["runs"]) == {"thread", "process"}
        for name, run in entry["runs"].items():
            assert run["elapsed_s"] > 0, name
            assert run["streams_per_s"] > 0, name
            assert run["epochs_per_s"] > 0, name
        params = entry["params"]
        assert params["streams"] == 2
        assert params["epochs_per_stream"] > 0
        assert params["cpu_count"] >= 1
        assert entry["speedup_process_vs_thread"] > 0


class TestAdaptiveEpoch:
    def test_small_scale_tune_and_burst_replay(self):
        """The schema-8 adaptive workload (scaled down): the tune
        curve's shape, and the three-way burst replay's record."""
        from repro.bench.perf import ADAPTIVE_TUNE_SIZES, _bench_adaptive_epoch

        entry = _bench_adaptive_epoch(events=256)
        tune = entry["tune"]
        assert [p["epoch_size"] for p in tune["points"]] == list(
            ADAPTIVE_TUNE_SIZES
        )
        assert set(tune["fit"]) == {
            "fp_rate_vs_log2_h", "mean_epoch_ms_vs_h"
        }
        runs = entry["serve"]["runs"]
        assert set(runs) == {"fixed_small", "fixed_large", "adaptive"}
        for name, run in runs.items():
            assert run["rows"] > 0, name
            assert run["analysis_epochs"] > 0, name
            assert run["p95_row_latency_ms"] >= 0, name
            assert 0 <= run["fp_rate"] <= 1, name
        # Folding really happened: fewer analysis epochs than rows.
        assert runs["adaptive"]["analysis_epochs"] < runs["adaptive"]["rows"]
        assert entry["serve"]["params"]["slo_target_ms"] > 0


class TestBenchCLI:
    def test_bench_subcommand_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        rc = main(["bench", "--output", str(out), "--repeats", "1",
                   "--big-events", "0", "--serve-streams", "0",
                   "--adaptive-events", "0"])
        assert rc == 0
        report = json.loads(out.read_text())
        assert "microbench_core" in report["workloads"]
        assert "vs reference serial" in capsys.readouterr().out

    def test_bench_rejects_negative_big_events(self, tmp_path, capsys):
        rc = main(["bench", "--output", str(tmp_path / "x.json"),
                   "--big-events", "-1"])
        assert rc != 0
        assert "--big-events" in capsys.readouterr().err

    def test_bench_rejects_negative_adaptive_events(self, tmp_path, capsys):
        rc = main(["bench", "--output", str(tmp_path / "x.json"),
                   "--adaptive-events", "-1"])
        assert rc != 0
        assert "--adaptive-events" in capsys.readouterr().err
