"""CLI resilience surfaces: failure paths, resume, quarantine, faults.

Every failure exits 2 with a one-line ``repro <cmd>: error: ...``
diagnostic on stderr (never a traceback), and the recovery paths --
``repro resume``, ``--quarantine``, ``--inject-faults`` -- must leave
results indistinguishable from an undisturbed run.
"""

import json
import os

from repro.cli import main
from repro.obs import read_events

CHECK_ARGS = [
    "check", "--benchmark", "OCEAN", "--threads", "2",
    "--events", "3000", "--epoch-size", "256",
]


def _one_line_error(capsys, command):
    err = capsys.readouterr().err
    lines = err.strip().splitlines()
    assert len(lines) == 1, err
    assert lines[0].startswith(f"repro {command}: error:")
    return lines[0]


class TestCorruptTraceFailures:
    def test_check_rejects_invalid_json_with_context(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_text("this is not json\n")
        assert main(["check", "--trace", str(bad)]) == 2
        message = _one_line_error(capsys, "check")
        assert f"{bad}:1" in message  # file and line of the defect

    def test_check_rejects_truncated_trace(self, tmp_path, capsys):
        path = tmp_path / "trunc.trace"
        assert main([
            "generate", "--benchmark", "LU", "--threads", "2",
            "--events", "500", "--output", str(path),
        ]) == 0
        capsys.readouterr()
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        assert main(["check", "--trace", str(path)]) == 2
        assert "unexpected end of file" in _one_line_error(capsys, "check")

    def test_bad_fault_spec_rejected(self, capsys):
        assert main(CHECK_ARGS + ["--inject-faults", "explode=0.5"]) == 2
        assert "unknown fault spec key" in _one_line_error(capsys, "check")


class TestResume:
    def _interrupted_then_resumed(self, tmp_path, capsys, extra=()):
        ck = str(tmp_path / "run.ckpt")
        assert main(CHECK_ARGS) == 0
        full = capsys.readouterr().out
        assert main(
            CHECK_ARGS
            + ["--checkpoint", ck, "--stop-after-epoch", "4"]
            + list(extra)
        ) == 0
        stopped = capsys.readouterr().out
        assert "stopped after receiving epoch 4" in stopped
        assert main(["resume", "--checkpoint", ck]) == 0
        return full, capsys.readouterr().out

    def test_resumed_output_identical_to_uninterrupted(self, tmp_path, capsys):
        full, resumed = self._interrupted_then_resumed(tmp_path, capsys)
        assert resumed == full

    def test_resume_after_faulty_interrupted_run(self, tmp_path, capsys):
        full, resumed = self._interrupted_then_resumed(
            tmp_path, capsys,
            extra=["--backend", "threads", "--retries", "8",
                   "--inject-faults", "crash=0.15,corrupt=0.1,seed=7"],
        )
        assert resumed == full

    def test_mismatched_config_refused(self, tmp_path, capsys):
        ck = str(tmp_path / "run.ckpt")
        assert main(
            CHECK_ARGS + ["--checkpoint", ck, "--stop-after-epoch", "3"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["resume", "--checkpoint", ck, "--epoch-size", "512"]
        ) == 2
        message = _one_line_error(capsys, "resume")
        assert "different configuration" in message
        assert "epoch_size: checkpoint=256 run=512" in message

    def test_missing_checkpoint_file(self, tmp_path, capsys):
        assert main(
            ["resume", "--checkpoint", str(tmp_path / "absent.ckpt")]
        ) == 2
        assert "cannot read checkpoint" in _one_line_error(capsys, "resume")

    def test_garbage_checkpoint_file(self, tmp_path, capsys):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"\x00\x01 not a checkpoint")
        assert main(["resume", "--checkpoint", str(path)]) == 2
        _one_line_error(capsys, "resume")

    def test_resume_trace_run_verifies_digest(self, tmp_path, capsys):
        trace = tmp_path / "t.trace"
        ck = str(tmp_path / "t.ckpt")
        assert main([
            "generate", "--benchmark", "OCEAN", "--threads", "2",
            "--events", "3000", "--output", str(trace),
        ]) == 0
        assert main([
            "check", "--trace", str(trace), "--epoch-size", "256",
            "--checkpoint", ck, "--stop-after-epoch", "3",
        ]) == 0
        capsys.readouterr()
        # Tamper with the trace after the checkpoint was taken.
        with open(trace, "a") as fh:
            fh.write("\n")
        assert main(["resume", "--checkpoint", ck]) == 2
        assert "sha256 mismatch" in _one_line_error(capsys, "resume")


class TestSweepQuarantine:
    def _traces(self, tmp_path):
        good = tmp_path / "good.trace"
        bad = tmp_path / "bad.trace"
        assert main([
            "generate", "--benchmark", "LU", "--threads", "2",
            "--events", "500", "--output", str(good),
        ]) == 0
        bad.write_text("{ mangled\n")
        return good, bad

    def test_quarantine_moves_bad_trace_and_continues(self, tmp_path, capsys):
        good, bad = self._traces(tmp_path)
        quarantine = tmp_path / "quarantined"
        assert main([
            "sweep", "--traces", str(good), str(bad),
            "--quarantine", str(quarantine), "--sizes", "256",
        ]) == 0
        captured = capsys.readouterr()
        assert "quarantined unparseable trace" in captured.err
        assert not bad.exists()
        assert (quarantine / "bad.trace").exists()
        assert f"trace: {good}" in captured.out
        assert "epoch size" in captured.out

    def test_without_quarantine_sweep_fails(self, tmp_path, capsys):
        good, bad = self._traces(tmp_path)
        capsys.readouterr()
        assert main(
            ["sweep", "--traces", str(good), str(bad), "--sizes", "256"]
        ) == 2
        _one_line_error(capsys, "sweep")
        assert bad.exists()  # hard failure must not move files

    def test_all_traces_quarantined_fails(self, tmp_path, capsys):
        bad = tmp_path / "only.trace"
        bad.write_text("nope\n")
        assert main([
            "sweep", "--traces", str(bad),
            "--quarantine", str(tmp_path / "q"), "--sizes", "256",
        ]) == 2
        err = capsys.readouterr().err
        assert "no readable trace files remain" in err


class TestFaultInjectionCLI:
    def test_faulty_output_identical_to_fault_free(self, capsys):
        assert main(CHECK_ARGS) == 0
        reference = capsys.readouterr().out
        assert main(
            CHECK_ARGS
            + ["--backend", "threads", "--retries", "8",
               "--inject-faults", "crash=0.2,corrupt=0.1,seed=11"]
        ) == 0
        assert capsys.readouterr().out == reference

    def test_exhausted_retries_fail_cleanly(self, capsys):
        assert main(
            CHECK_ARGS
            + ["--backend", "threads", "--retries", "1",
               "--inject-faults", "crash=1.0"]
        ) == 2
        assert "failed" in _one_line_error(capsys, "check")

    def test_fault_events_carry_provenance(self, tmp_path, capsys):
        log = tmp_path / "faults.jsonl"
        assert main(
            CHECK_ARGS
            + ["--backend", "threads",
               "--inject-faults", "crash=0.3,seed=1",
               "--emit-events", str(log)]
        ) == 0
        events = read_events(str(log))
        faults = [ev for ev in events if ev["ev"] == "resilience.fault"]
        assert faults, "a 30% crash rate must hit at least once"
        for ev in faults:
            assert ev["kind"] == "crash"
            assert "epoch" in ev and "thread" in ev
            assert "batch" in ev and "attempt" in ev


class TestStatsSummaryJson:
    def test_summary_json_written_atomically(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        assert main([
            "stats", "--benchmark", "LU", "--threads", "2",
            "--events", "2000", "--epoch-size", "256",
            "--summary-json", str(out),
        ]) == 0
        assert f"wrote metrics summary to {out}" in capsys.readouterr().out
        snap = json.loads(out.read_text())
        assert set(snap) == {"counters", "gauges", "spans"}
        assert "pass.first" in snap["spans"]
        assert not os.path.exists(str(out) + ".tmp")

    def test_unwritable_summary_json(self, tmp_path, capsys):
        assert main([
            "stats", "--benchmark", "LU", "--threads", "2",
            "--events", "500", "--epoch-size", "256",
            "--summary-json", str(tmp_path / "no" / "dir" / "s.json"),
        ]) == 2
        _one_line_error(capsys, "stats")
