"""End-to-end integration: generate -> persist -> reload -> analyze.

Exercises the full user journey across subpackage boundaries and pins
down that persistence is analysis-transparent.
"""

import io

import pytest

from repro.core.epoch import partition_by_global_order
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.reports import compare_reports
from repro.lifeguards.sequential import SequentialAddrCheck
from repro.sim.logformat import decode_block, encode_block
from repro.sim.pipeline import StreamingLBASimulation
from repro.trace.serialize import dump, load
from repro.workloads.registry import get_benchmark


@pytest.fixture(scope="module")
def journey():
    original = get_benchmark("BARNES").generate(3, 5000, seed=21)
    buf = io.StringIO()
    dump(original, buf)
    buf.seek(0)
    reloaded = load(buf)
    return original, reloaded


class TestPersistenceTransparency:
    def test_analysis_identical_after_reload(self, journey):
        original, reloaded = journey

        def flags(program):
            guard = ButterflyAddrCheck(
                initially_allocated=program.preallocated
            )
            ButterflyEngine(guard).run(
                partition_by_global_order(program, 512)
            )
            return {r.identity() for r in guard.errors}

        assert flags(original) == flags(reloaded)

    def test_precision_identical_after_reload(self, journey):
        original, reloaded = journey
        results = []
        for program in (original, reloaded):
            truth = SequentialAddrCheck(program.preallocated)
            truth.run_order(program)
            guard = ButterflyAddrCheck(
                initially_allocated=program.preallocated
            )
            ButterflyEngine(guard).run(
                partition_by_global_order(program, 2048)
            )
            pr = compare_reports(
                truth.errors, guard.errors, program.memory_op_count
            )
            results.append((pr.flagged, pr.false_positives,
                            pr.false_negatives))
        assert results[0] == results[1]

    def test_wire_format_round_trips_whole_threads(self, journey):
        original, _ = journey
        for trace in original.threads:
            data = encode_block(trace.instrs)
            assert decode_block(data) == list(trace.instrs)


class TestStreamingJourney:
    def test_streamed_monitoring_of_reloaded_trace(self, journey):
        _, reloaded = journey
        result = StreamingLBASimulation(reloaded, epoch_size=1024).run()
        assert result.cycles > 0
        assert result.guard.sos.frontier >= result.epochs
