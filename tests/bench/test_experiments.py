"""Tests for the table/figure assembly (small scale)."""

import pytest

from repro.bench.experiments import figure11, figure12, figure13, table1
from repro.bench.harness import ExperimentConfig, ExperimentSuite
from repro.bench.reporting import (
    format_rate,
    render_bars,
    render_grouped_bars,
    render_table,
)
from repro.workloads.registry import BENCHMARKS


@pytest.fixture(scope="module")
def small_suite():
    return ExperimentSuite(
        ExperimentConfig(
            events_per_thread=2500,
            thread_counts=(2,),
            epoch_small=128,
            epoch_large=1024,
        )
    )


class TestTable1:
    def test_has_both_halves(self):
        t1 = table1()
        assert len(t1.simulation_rows) == 8
        assert len(t1.benchmark_rows) == 6

    def test_render_contains_everything(self):
        text = table1().render()
        for name in BENCHMARKS:
            assert name in text
        assert "8KB" in text


class TestFigures:
    def test_figure11_covers_grid(self, small_suite):
        fig = figure11(small_suite)
        assert set(fig.data) == set(BENCHMARKS)
        for per in fig.data.values():
            assert set(per) == {2}
            ts, bf, par = per[2]
            assert ts > 0 and bf > 0 and par > 0
        assert "Figure 11" in fig.render()

    def test_figure11_wins_helper(self, small_suite):
        fig = figure11(small_suite)
        wins = fig.wins(2)
        assert isinstance(wins, list)

    def test_figure12_pairs(self, small_suite):
        fig = figure12(small_suite)
        for per in fig.data.values():
            small, large = per[2]
            assert small > 0 and large > 0
        assert "Figure 12" in fig.render()

    def test_figure13_rates(self, small_suite):
        fig = figure13(small_suite)
        for per in fig.data.values():
            small, large = per[2]
            assert 0.0 <= small <= 1.0
            assert 0.0 <= large <= 1.0
        assert fig.worst_large_epoch() in BENCHMARKS
        assert "Figure 13" in fig.render()


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(("a", "bbb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len({len(l) for l in lines}) == 1

    def test_render_bars_scales(self):
        text = render_bars("t", {"x": 1.0, "y": 2.0}, width=10)
        assert text.count("#") > 10

    def test_render_bars_empty(self):
        assert render_bars("title", {}) == "title"

    def test_render_grouped(self):
        text = render_grouped_bars("T", {"g": {"x": 1.0}})
        assert "[g]" in text

    def test_format_rate(self):
        assert "below measurement floor" in format_rate(0.0)
        assert format_rate(0.01) == "1%"
