"""Tests for the command-line interface (small workloads)."""

import pytest

from repro.cli import build_parser, main
from repro.obs import read_events


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_defaults(self):
        args = build_parser().parse_args(["figure11"])
        assert args.events == 32768
        assert args.threads == [2, 4, 8]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Simulator and Benchmark Parameters" in out
        assert "BLACKSCHOLES" in out

    def test_figure11_small(self, capsys):
        assert main(
            ["figure11", "--events", "2000", "--threads", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "butterfly" in out

    def test_figure13_small(self, capsys):
        assert main(
            ["figure13", "--events", "2000", "--threads", "2"]
        ) == 0
        assert "Figure 13" in capsys.readouterr().out

    def test_check_addrcheck(self, capsys):
        assert main(
            [
                "check", "--benchmark", "LU", "--threads", "2",
                "--events", "3000", "--epoch-size", "256",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "false negatives: 0" in out

    def test_check_race(self, capsys):
        assert main(
            [
                "check", "--benchmark", "OCEAN", "--threads", "2",
                "--events", "4000", "--epoch-size", "2048",
                "--lifeguard", "race",
            ]
        ) == 0
        assert "potential conflicts" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(
            [
                "sweep", "--benchmark", "LU", "--threads", "2",
                "--events", "3000", "--sizes", "256", "1024",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "epoch size" in out
        assert "slowdown" in out


class TestEmitEvents:
    def test_check_writes_parseable_event_log(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(
            [
                "check", "--benchmark", "LU", "--threads", "2",
                "--events", "2000", "--epoch-size", "256",
                "--emit-events", str(path),
            ]
        ) == 0
        assert f"events to {path}" in capsys.readouterr().out
        events = read_events(str(path))
        names = {ev["ev"] for ev in events}
        assert {"run.attach", "pass.first", "pass.second",
                "epoch.summary", "run.finish"} <= names
        # Epoch spans cover every epoch; every event is seq-numbered.
        epochs = [ev["epoch"] for ev in events if ev["ev"] == "pass.first"]
        assert epochs == sorted(epochs)
        assert [ev["seq"] for ev in events] == list(
            range(1, len(events) + 1)
        )

    def test_check_race_event_log(self, tmp_path, capsys):
        path = tmp_path / "race.jsonl"
        assert main(
            [
                "check", "--benchmark", "OCEAN", "--threads", "2",
                "--events", "2000", "--epoch-size", "512",
                "--lifeguard", "race", "--emit-events", str(path),
            ]
        ) == 0
        events = read_events(str(path))
        for ev in events:
            if ev["ev"] == "error":
                assert ev["stage"] == "second"
                assert ev["conflict"] in ("write-write", "read-write")

    def test_sweep_event_log_tags_each_config(self, tmp_path, capsys):
        path = tmp_path / "sweep.jsonl"
        assert main(
            [
                "sweep", "--benchmark", "LU", "--threads", "2",
                "--events", "2000", "--sizes", "256", "512",
                "--emit-events", str(path),
            ]
        ) == 0
        events = read_events(str(path))
        sizes = [
            ev["epoch_size"] for ev in events if ev["ev"] == "sweep.config"
        ]
        assert sizes == [256, 512]


class TestStatsCommand:
    def test_stats_prints_span_and_metric_summary(self, capsys):
        assert main(
            [
                "stats", "--benchmark", "LU", "--threads", "2",
                "--events", "2000", "--epoch-size", "256",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "spans (aggregated):" in out
        assert "pass.first" in out
        assert "gauges:" in out
        assert "intern.size" in out

    def test_stats_race_lifeguard(self, capsys):
        assert main(
            [
                "stats", "--benchmark", "OCEAN", "--threads", "2",
                "--events", "2000", "--epoch-size", "512",
                "--lifeguard", "race",
            ]
        ) == 0
        assert "racecheck.races" in capsys.readouterr().out

    def test_stats_emit_events(self, tmp_path, capsys):
        path = tmp_path / "stats.jsonl"
        assert main(
            [
                "stats", "--benchmark", "LU", "--threads", "2",
                "--events", "2000", "--epoch-size", "256",
                "--emit-events", str(path),
            ]
        ) == 0
        assert read_events(str(path))

    def test_stats_serve_honors_workers_flag(self, tmp_path, capsys):
        # Regression: the --serve self-test used to hardcode workers=2,
        # ignoring --workers entirely.  The daemon publishes its actual
        # shard count as the serve.workers gauge, so the summary proves
        # the flag reached the ServeConfig.
        import json

        summary = tmp_path / "summary.json"
        assert main(
            [
                "stats", "--benchmark", "LU", "--threads", "2",
                "--events", "1500", "--epoch-size", "256",
                "--serve", "--workers", "3",
                "--summary-json", str(summary),
            ]
        ) == 0
        snapshot = json.loads(summary.read_text())
        assert snapshot["gauges"]["serve.workers"] == 3
        assert snapshot["gauges"]["serve.shard_depth.2"] == 0
        assert snapshot["counters"]["serve.streams_completed"] == 2


class TestErrorPaths:
    """Unwritable outputs exit 2 with a one-line message, no traceback."""

    def bad_path(self, tmp_path):
        return str(tmp_path / "no" / "such" / "dir" / "out")

    def test_check_unwritable_emit_events(self, tmp_path, capsys):
        rc = main(
            ["check", "--events", "64",
             "--emit-events", self.bad_path(tmp_path)]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro check: error: cannot write")
        assert len(err.strip().splitlines()) == 1

    def test_sweep_unwritable_emit_events(self, tmp_path, capsys):
        rc = main(
            ["sweep", "--events", "64",
             "--emit-events", self.bad_path(tmp_path)]
        )
        assert rc == 2
        assert capsys.readouterr().err.startswith(
            "repro sweep: error: cannot write"
        )

    def test_bench_unwritable_output(self, tmp_path, capsys):
        rc = main(["bench", "--output", self.bad_path(tmp_path)])
        assert rc == 2
        assert capsys.readouterr().err.startswith(
            "repro bench: error: cannot write"
        )

    def test_bench_unwritable_emit_events(self, tmp_path, capsys):
        rc = main(
            ["bench", "--output", str(tmp_path / "ok.json"),
             "--emit-events", self.bad_path(tmp_path)]
        )
        assert rc == 2
        assert capsys.readouterr().err.startswith(
            "repro bench: error: cannot write"
        )

    def test_bench_bad_repeats(self, capsys):
        rc = main(["bench", "--repeats", "0"])
        assert rc == 2
        assert "--repeats must be >= 1" in capsys.readouterr().err

    def test_generate_unwritable_output(self, tmp_path, capsys):
        rc = main(
            ["generate", "--events", "64",
             "--output", self.bad_path(tmp_path)]
        )
        assert rc == 2
        assert capsys.readouterr().err.startswith(
            "repro generate: error: cannot write"
        )

    def test_check_missing_trace(self, tmp_path, capsys):
        rc = main(["check", "--trace", str(tmp_path / "nope.trace")])
        assert rc == 2
        assert capsys.readouterr().err.startswith(
            "repro check: error: cannot read"
        )
