"""Tests for the command-line interface (small workloads)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_defaults(self):
        args = build_parser().parse_args(["figure11"])
        assert args.events == 32768
        assert args.threads == [2, 4, 8]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Simulator and Benchmark Parameters" in out
        assert "BLACKSCHOLES" in out

    def test_figure11_small(self, capsys):
        assert main(
            ["figure11", "--events", "2000", "--threads", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "butterfly" in out

    def test_figure13_small(self, capsys):
        assert main(
            ["figure13", "--events", "2000", "--threads", "2"]
        ) == 0
        assert "Figure 13" in capsys.readouterr().out

    def test_check_addrcheck(self, capsys):
        assert main(
            [
                "check", "--benchmark", "LU", "--threads", "2",
                "--events", "3000", "--epoch-size", "256",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "false negatives: 0" in out

    def test_check_race(self, capsys):
        assert main(
            [
                "check", "--benchmark", "OCEAN", "--threads", "2",
                "--events", "4000", "--epoch-size", "2048",
                "--lifeguard", "race",
            ]
        ) == 0
        assert "potential conflicts" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(
            [
                "sweep", "--benchmark", "LU", "--threads", "2",
                "--events", "3000", "--sizes", "256", "1024",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "epoch size" in out
        assert "slowdown" in out
