"""CLI streaming surfaces: ``--stream``, version-2 traces, and
bounded-window resume.

Streaming must be invisible in results: every streamed command prints
exactly what its materialized twin prints, plus one ``stream:`` line
reporting the resident-summary peak against the 3-epoch bound.
"""

from repro.cli import main
from repro.obs import read_events
from repro.obs.recorder import normalize_events
from repro.trace.serialize import file_version

CHECK_ARGS = [
    "check", "--benchmark", "OCEAN", "--threads", "2",
    "--events", "3000", "--epoch-size", "256",
]

GENERATE_ARGS = [
    "generate", "--benchmark", "OCEAN", "--threads", "2",
    "--events", "4000", "--epoch-size", "128", "--stream",
]


def _one_line_error(capsys, command):
    err = capsys.readouterr().err
    lines = err.strip().splitlines()
    assert len(lines) == 1, err
    assert lines[0].startswith(f"repro {command}: error:")
    return lines[0]


class TestGenerateStream:
    def test_writes_a_version_2_trace(self, tmp_path, capsys):
        path = tmp_path / "t.stream.jsonl"
        assert main(GENERATE_ARGS + ["--output", str(path)]) == 0
        assert "streamed" in capsys.readouterr().out
        assert file_version(path) == 2


class TestCheckStream:
    def test_stream_flag_adds_only_the_peak_line(self, capsys):
        assert main(CHECK_ARGS) == 0
        materialized = capsys.readouterr().out
        assert main(CHECK_ARGS + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        assert streamed.startswith(materialized)
        extra = streamed[len(materialized):].splitlines()
        assert len(extra) == 1
        assert extra[0] == "stream: peak resident summaries 6 (bound 6)"

    def test_version_2_trace_streams_automatically(self, tmp_path, capsys):
        path = tmp_path / "t.stream.jsonl"
        assert main(GENERATE_ARGS + ["--output", str(path)]) == 0
        capsys.readouterr()
        assert main(["check", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "(streamed)" in out
        assert "stream: peak resident summaries 6 (bound 6)" in out

    def test_truncated_stream_trace_fails_with_context(
        self, tmp_path, capsys
    ):
        path = tmp_path / "t.stream.jsonl"
        assert main(GENERATE_ARGS + ["--output", str(path)]) == 0
        capsys.readouterr()
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:3]))
        assert main(["check", "--trace", str(path)]) == 2
        assert f"{path}:" in _one_line_error(capsys, "check")


class TestStreamResume:
    def _generate(self, tmp_path, capsys):
        path = tmp_path / "t.stream.jsonl"
        assert main(GENERATE_ARGS + ["--output", str(path)]) == 0
        capsys.readouterr()
        return str(path)

    def test_resumed_output_identical_to_uninterrupted(
        self, tmp_path, capsys
    ):
        trace = self._generate(tmp_path, capsys)
        ck = str(tmp_path / "t.ckpt")
        assert main(["check", "--trace", trace]) == 0
        full = capsys.readouterr().out
        assert main([
            "check", "--trace", trace,
            "--checkpoint", ck, "--stop-after-epoch", "4",
        ]) == 0
        assert "stopped after receiving epoch 4" in capsys.readouterr().out
        assert main(["resume", "--checkpoint", ck]) == 0
        assert capsys.readouterr().out == full

    def test_stitched_event_log_equals_uninterrupted(
        self, tmp_path, capsys
    ):
        trace = self._generate(tmp_path, capsys)
        ck = str(tmp_path / "t.ckpt")
        full_log = tmp_path / "full.jsonl"
        stopped_log = tmp_path / "stopped.jsonl"
        resumed_log = tmp_path / "resumed.jsonl"
        assert main([
            "check", "--trace", trace, "--emit-events", str(full_log),
        ]) == 0
        assert main([
            "check", "--trace", trace, "--emit-events", str(stopped_log),
            "--checkpoint", ck, "--stop-after-epoch", "4",
        ]) == 0
        assert main([
            "resume", "--checkpoint", ck,
            "--emit-events", str(resumed_log),
        ]) == 0
        resumed = read_events(str(resumed_log))
        boundary = resumed[0]["seq"]
        prefix = [
            e for e in read_events(str(stopped_log)) if e["seq"] < boundary
        ]
        assert normalize_events(prefix + resumed) == normalize_events(
            read_events(str(full_log))
        )

    def test_tampered_stream_trace_refused(self, tmp_path, capsys):
        trace = self._generate(tmp_path, capsys)
        ck = str(tmp_path / "t.ckpt")
        assert main([
            "check", "--trace", trace,
            "--checkpoint", ck, "--stop-after-epoch", "4",
        ]) == 0
        capsys.readouterr()
        with open(trace, "a") as fh:
            fh.write("\n")
        assert main(["resume", "--checkpoint", ck]) == 2
        assert "sha256 mismatch" in _one_line_error(capsys, "resume")


class TestSweepAndStatsStream:
    def test_sweep_stream_matches_materialized_table(self, capsys):
        args = [
            "sweep", "--benchmark", "LU", "--threads", "2",
            "--events", "3000", "--sizes", "256", "1024",
        ]
        assert main(args) == 0
        materialized = capsys.readouterr().out
        assert main(args + ["--stream"]) == 0
        assert capsys.readouterr().out == materialized

    def test_stats_stream_reports_window_metrics(self, capsys):
        assert main([
            "stats", "--benchmark", "LU", "--threads", "2",
            "--events", "2000", "--epoch-size", "256", "--stream",
        ]) == 0
        out = capsys.readouterr().out
        assert "stream.epochs_received" in out
        assert "engine.window_resident_blocks" in out
