"""Unit tests for butterfly TaintCheck."""

import random

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.lifeguards.reports import ErrorKind
from repro.lifeguards.taintcheck import BOT, TOP, ButterflyTaintCheck, _value_of
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


def run_guard(program, h, mode="relaxed", **kwargs):
    guard = ButterflyTaintCheck(mode=mode, **kwargs)
    ButterflyEngine(guard).run(partition_fixed(program, h))
    return guard


class TestTransferFunctions:
    def test_value_mapping(self):
        dst, v = _value_of(Instr.taint(3))
        assert dst == 3 and v is BOT
        dst, v = _value_of(Instr.untaint(3))
        assert dst == 3 and v is TOP
        dst, v = _value_of(Instr.write(3))
        assert v is TOP
        dst, v = _value_of(Instr.assign(1, 2, 3))
        assert v == (2, 3)
        assert _value_of(Instr.read(1)) is None
        assert _value_of(Instr.nop()) is None

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ButterflyTaintCheck(mode="weird")


class TestSingleThread:
    @pytest.mark.parametrize("mode", ["relaxed", "sc"])
    def test_direct_taint_jump(self, mode):
        prog = TraceProgram.from_lists(
            [Instr.taint(1), Instr.jump(1)]
        )
        guard = run_guard(prog, 2, mode=mode)
        assert [r.kind for r in guard.errors] == [ErrorKind.TAINTED_JUMP]

    @pytest.mark.parametrize("mode", ["relaxed", "sc"])
    def test_propagation_chain(self, mode):
        prog = TraceProgram.from_lists(
            [Instr.taint(1), Instr.assign(2, 1), Instr.assign(3, 2),
             Instr.jump(3)]
        )
        guard = run_guard(prog, 4, mode=mode)
        assert len(guard.errors) == 1

    @pytest.mark.parametrize("mode", ["relaxed", "sc"])
    def test_untaint_blocks_chain(self, mode):
        prog = TraceProgram.from_lists(
            [Instr.taint(1), Instr.untaint(1), Instr.assign(2, 1),
             Instr.jump(2)]
        )
        guard = run_guard(prog, 4, mode=mode)
        assert len(guard.errors) == 0

    def test_taint_across_epochs_via_sos(self):
        prog = TraceProgram.from_lists(
            [Instr.taint(1)] + [Instr.nop()] * 6 + [Instr.jump(1)]
        )
        guard = run_guard(prog, 2)
        assert len(guard.errors) == 1

    def test_untaint_across_epochs_via_sos(self):
        prog = TraceProgram.from_lists(
            [Instr.taint(1), Instr.untaint(1)] + [Instr.nop()] * 6
            + [Instr.jump(1)]
        )
        guard = run_guard(prog, 2)
        assert len(guard.errors) == 0


class TestCrossThread:
    def test_concurrent_taint_is_conservatively_flagged(self):
        # Thread 0 jumps on x while thread 1 may concurrently taint it:
        # some valid ordering taints first, so the jump is flagged.
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.jump(4)],
            [Instr.taint(4), Instr.nop()],
        )
        guard = run_guard(prog, 1)
        assert len(guard.errors) == 1

    def test_cross_thread_inheritance_through_wings(self):
        # Thread 1 copies tainted y into x; thread 0 jumps on x in an
        # adjacent epoch.
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.nop(), Instr.jump(5)],
            [Instr.taint(6), Instr.assign(5, 6), Instr.nop()],
        )
        guard = run_guard(prog, 1)
        assert len(guard.errors) == 1

    def test_strictly_earlier_untaint_not_flagged(self):
        # Taint is removed two epochs before the jump, in the same
        # thread, with no other writers: no flag.
        prog = TraceProgram.from_lists(
            [Instr.taint(3), Instr.untaint(3), Instr.nop(), Instr.nop(),
             Instr.nop(), Instr.nop(), Instr.jump(3)],
        )
        guard = run_guard(prog, 2)
        assert len(guard.errors) == 0

    def test_own_local_untaint_shields_jump(self):
        # Thread 0 untaints x right before its jump; no wings write x.
        prog = TraceProgram.from_lists(
            [Instr.untaint(3), Instr.jump(3)],
            [Instr.nop(), Instr.nop()],
        )
        guard = run_guard(prog, 2)
        assert len(guard.errors) == 0

    def test_wing_taint_can_override_local_untaint(self):
        # Thread 0 untaints x then jumps, but thread 1 may re-taint it
        # concurrently: flagged.
        prog = TraceProgram.from_lists(
            [Instr.untaint(3), Instr.jump(3)],
            [Instr.taint(3), Instr.nop()],
        )
        guard = run_guard(prog, 2)
        assert len(guard.errors) == 1


class TestTwoPhaseResolution:
    def test_impossible_epoch_ordering_not_tainted(self):
        """The 'Reducing False Positives' example of Section 6.2: a
        chain whose taint source lies two epochs *after* the inheriting
        rule cannot fire (epoch 1 commits before epoch 3)."""
        # Thread 1: b <- r in epoch 0; thread 2: r <- taint in epoch 2;
        # thread 0 resolves a <- b in epoch 1.  The taint of r cannot
        # have flowed into b.
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.assign(1, 2), Instr.nop(), Instr.jump(1)],
            [Instr.assign(2, 3), Instr.nop(), Instr.nop(), Instr.nop()],
            [Instr.nop(), Instr.nop(), Instr.taint(3), Instr.nop()],
        )
        guard = run_guard(prog, 1)
        # a inherits from b which inherits from r, but r's taint is in
        # epoch 2 while the b<-r rule is in epoch 0: phases keep them
        # apart, and the jump at epoch 3 sees a's last check...
        # The chain requires epoch-2 taint to reach an epoch-0 rule:
        # impossible, so no flag.
        assert len(guard.errors) == 0

    def test_legal_two_epoch_chain_is_flagged(self):
        # Same shape but the taint happens in the adjacent epoch:
        # possible interleaving, must flag.
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.assign(1, 2), Instr.nop(), Instr.jump(1)],
            [Instr.assign(2, 3), Instr.nop(), Instr.nop(), Instr.nop()],
            [Instr.nop(), Instr.taint(3), Instr.nop(), Instr.nop()],
        )
        guard = run_guard(prog, 1)
        assert len(guard.errors) == 1


class TestSCvsRelaxed:
    def test_relaxed_flags_zigzag_sc_does_not(self):
        """Figure 2's taint zig-zag: c tainted, a := c and b := a in
        one thread, concurrently observed.  Under SC within the window,
        b := a cannot see a value a received *later* in program order;
        under relaxed models it can (the paper's example (2),(i),(1))."""
        # Thread 0: b := a ; a := c   (program order!)
        # Thread 1: taint c
        # Jump on b afterwards from thread 1's epoch-adjacent block.
        prog = TraceProgram.from_lists(
            [Instr.assign(11, 10), Instr.assign(10, 12)],
            [Instr.taint(12), Instr.jump(11)],
        )
        relaxed = run_guard(prog, 2, mode="relaxed")
        sc = run_guard(prog, 2, mode="sc")
        assert len(relaxed.errors) == 1
        assert len(sc.errors) == 0

    def test_sc_budget_exhaustion_is_conservative(self):
        # White-box: an exhausted search budget must resolve in the
        # conservative direction (assume tainted, never untainted).
        from repro.lifeguards.taintcheck import TaintSummary, _RuleGraph

        guard = ButterflyTaintCheck(mode="sc", max_steps=0)
        body = TaintSummary(block_id=(0, 0))
        graph = _RuleGraph([], body, guard)
        graph._budget[0] = 0
        assert graph._search_sc(99, {}, frozenset())


class TestLastCheckAndSOS:
    def test_lastcheck_populated(self):
        prog = TraceProgram.from_lists(
            [Instr.taint(1), Instr.untaint(2), Instr.nop()]
        )
        guard = run_guard(prog, 3)
        summary = guard._summaries[(0, 0)]
        assert summary.lastcheck[1] is BOT
        assert summary.lastcheck[2] is TOP

    def test_sos_tracks_tainted_addresses(self):
        prog = TraceProgram.from_lists(
            [Instr.taint(1), Instr.nop(), Instr.nop(), Instr.nop()]
        )
        guard = run_guard(prog, 1)
        assert 1 in guard.sos.get(2)

    def test_sos_kill_requires_all_threads_clean(self):
        # Thread 0 untaints x while thread 1 re-taints it in the same
        # epoch: x must stay in the SOS (conservative).
        prog = TraceProgram.from_lists(
            [Instr.taint(9), Instr.nop(), Instr.untaint(9), Instr.nop(),
             Instr.nop(), Instr.nop()],
            [Instr.nop(), Instr.nop(), Instr.taint(9), Instr.nop(),
             Instr.nop(), Instr.nop()],
        )
        guard = run_guard(prog, 2)
        assert 9 in guard.sos.get(guard.sos.frontier)

    def test_unanimous_untaint_clears_sos(self):
        prog = TraceProgram.from_lists(
            [Instr.taint(9), Instr.nop(), Instr.untaint(9), Instr.nop(),
             Instr.nop(), Instr.nop(), Instr.nop(), Instr.nop()],
        )
        guard = run_guard(prog, 2)
        assert 9 not in guard.sos.get(guard.sos.frontier)
