"""Unit tests for the sequential (oracle/baseline) lifeguards."""

from repro.lifeguards.reports import ErrorKind
from repro.lifeguards.sequential import (
    SequentialAddrCheck,
    SequentialTaintCheck,
)
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


def stream(*instrs):
    return [((0, i), instr) for i, instr in enumerate(instrs)]


class TestSequentialAddrCheck:
    def test_clean_malloc_use_free(self):
        guard = SequentialAddrCheck()
        guard.run(stream(
            Instr.malloc(0, 2), Instr.write(0), Instr.read(1), Instr.free(0, 2)
        ))
        assert len(guard.errors) == 0

    def test_access_unallocated(self):
        guard = SequentialAddrCheck()
        guard.run(stream(Instr.read(5)))
        kinds = [r.kind for r in guard.errors]
        assert kinds == [ErrorKind.ACCESS_UNALLOCATED]

    def test_double_free(self):
        guard = SequentialAddrCheck()
        guard.run(stream(Instr.malloc(0), Instr.free(0), Instr.free(0)))
        assert [r.kind for r in guard.errors] == [ErrorKind.FREE_UNALLOCATED]

    def test_double_malloc(self):
        guard = SequentialAddrCheck()
        guard.run(stream(Instr.malloc(0), Instr.malloc(0)))
        assert [r.kind for r in guard.errors] == [ErrorKind.MALLOC_ALLOCATED]

    def test_use_after_free(self):
        guard = SequentialAddrCheck()
        guard.run(stream(Instr.malloc(0), Instr.free(0), Instr.write(0)))
        assert [r.kind for r in guard.errors] == [ErrorKind.ACCESS_UNALLOCATED]

    def test_initially_allocated_seed(self):
        guard = SequentialAddrCheck(initially_allocated=[5])
        guard.run(stream(Instr.read(5)))
        assert len(guard.errors) == 0

    def test_error_ref_points_at_instruction(self):
        guard = SequentialAddrCheck()
        guard.run(stream(Instr.nop(), Instr.read(5)))
        assert guard.errors.reports[0].ref == (0, 1)


class TestSequentialTaintCheck:
    def test_taint_propagates_through_assign(self):
        guard = SequentialTaintCheck()
        guard.run(stream(
            Instr.taint(1), Instr.assign(2, 1), Instr.jump(2)
        ))
        assert [r.kind for r in guard.errors] == [ErrorKind.TAINTED_JUMP]

    def test_untaint_stops_propagation(self):
        guard = SequentialTaintCheck()
        guard.run(stream(
            Instr.taint(1), Instr.untaint(1), Instr.assign(2, 1), Instr.jump(2)
        ))
        assert len(guard.errors) == 0

    def test_binop_or_semantics(self):
        guard = SequentialTaintCheck()
        guard.run(stream(
            Instr.taint(1), Instr.assign(3, 1, 2), Instr.jump(3)
        ))
        assert len(guard.errors) == 1

    def test_write_untaints(self):
        guard = SequentialTaintCheck()
        guard.run(stream(
            Instr.taint(1), Instr.write(1), Instr.jump(1)
        ))
        assert len(guard.errors) == 0

    def test_assign_from_clean_untaints_dst(self):
        guard = SequentialTaintCheck()
        guard.run(stream(
            Instr.taint(2), Instr.assign(2, 1), Instr.jump(2)
        ))
        assert len(guard.errors) == 0

    def test_clean_jump(self):
        guard = SequentialTaintCheck()
        guard.run(stream(Instr.jump(4)))
        assert len(guard.errors) == 0
