"""Unit tests for butterfly AddrCheck."""

import random

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.reports import ErrorKind
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


def run_guard(program, h, **kwargs):
    guard = ButterflyAddrCheck(**kwargs)
    ButterflyEngine(guard).run(partition_fixed(program, h))
    return guard


class TestSingleThread:
    def test_clean_lifecycle(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0, 4), Instr.write(1), Instr.read(3), Instr.free(0, 4)]
        )
        guard = run_guard(prog, 2)
        assert len(guard.errors) == 0

    def test_access_before_malloc(self):
        prog = TraceProgram.from_lists([Instr.read(5), Instr.malloc(5)])
        guard = run_guard(prog, 2)
        assert ErrorKind.ACCESS_UNALLOCATED in {r.kind for r in guard.errors}

    def test_double_free_single_thread(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0), Instr.free(0), Instr.free(0)]
        )
        guard = run_guard(prog, 3)
        assert ErrorKind.FREE_UNALLOCATED in {r.kind for r in guard.errors}

    def test_use_after_free_across_epochs(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0), Instr.free(0), Instr.nop(), Instr.nop(),
             Instr.nop(), Instr.nop(), Instr.read(0)]
        )
        guard = run_guard(prog, 2)
        assert ErrorKind.ACCESS_UNALLOCATED in {r.kind for r in guard.errors}

    def test_initially_allocated(self):
        prog = TraceProgram.from_lists([Instr.read(5), Instr.write(5)])
        guard = run_guard(prog, 1, initially_allocated=[5])
        assert len(guard.errors) == 0


class TestCrossThread:
    def test_distant_cross_thread_alloc_is_safe(self):
        # Allocation two full epochs before the access: strictly
        # ordered, so no flag.
        prog = TraceProgram.from_lists(
            [Instr.malloc(7), Instr.nop(), Instr.nop(), Instr.nop()],
            [Instr.nop(), Instr.nop(), Instr.nop(), Instr.read(7)],
        )
        guard = run_guard(prog, 1)
        assert len(guard.errors) == 0

    def test_adjacent_cross_thread_alloc_is_flagged(self):
        # Allocation and access potentially concurrent: conservative
        # flag (the paper's Figure 9 left case -- a false positive).
        prog = TraceProgram.from_lists(
            [Instr.malloc(7), Instr.nop()],
            [Instr.nop(), Instr.read(7)],
        )
        guard = run_guard(prog, 1)
        kinds = {r.kind for r in guard.errors}
        assert ErrorKind.ACCESS_UNALLOCATED in kinds
        assert ErrorKind.UNSAFE_ISOLATION in kinds

    def test_concurrent_frees_are_metadata_race(self):
        prog = TraceProgram.from_lists(
            [Instr.free(3)],
            [Instr.free(3)],
        )
        guard = run_guard(prog, 1, initially_allocated=[3])
        assert ErrorKind.UNSAFE_ISOLATION in {r.kind for r in guard.errors}

    def test_cross_thread_use_after_distant_free_flagged(self):
        prog = TraceProgram.from_lists(
            [Instr.free(3), Instr.nop(), Instr.nop(), Instr.nop()],
            [Instr.nop(), Instr.nop(), Instr.nop(), Instr.read(3)],
        )
        guard = run_guard(prog, 1, initially_allocated=[3])
        assert ErrorKind.ACCESS_UNALLOCATED in {r.kind for r in guard.errors}


class TestFigure9:
    """The paper's Figure 9: interleavings of allocations and accesses."""

    def test_isolated_allocation_and_same_thread_use_is_safe(self):
        # Thread 3 allocates b and later accesses it itself; nobody
        # else touches b: safe even though the allocation is not yet in
        # the SOS (within-thread LSOS covers it).
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.nop(), Instr.nop(), Instr.nop()],
            [Instr.nop(), Instr.malloc(11), Instr.write(11), Instr.read(11)],
        )
        guard = run_guard(prog, 2)
        assert len(guard.errors) == 0

    def test_potentially_concurrent_access_during_allocation(self):
        # Thread 1 allocates a; thread 2 accesses a in an adjacent
        # epoch: flagged.
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.malloc(10), Instr.nop(), Instr.nop()],
            [Instr.nop(), Instr.nop(), Instr.read(10), Instr.nop()],
        )
        guard = run_guard(prog, 2)
        assert len(guard.errors) > 0


class TestWorkCounters:
    def test_block_work_populated(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0, 2), Instr.write(0), Instr.write(0), Instr.free(0, 2)]
        )
        guard = run_guard(prog, 2)
        w0 = guard.block_work[(0, 0)]
        assert w0["events"] == 2
        assert w0["allocs"] == 2
        assert w0["accesses"] == 1

    def test_idempotent_filter_counts(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0), Instr.read(0), Instr.read(0), Instr.read(0)]
        )
        guard = run_guard(prog, 4)
        w = guard.block_work[(0, 0)]
        assert w["accesses"] == 3
        assert w["checks"] == 1  # duplicates filtered within the block

    def test_filter_disabled(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0), Instr.read(0), Instr.read(0)]
        )
        guard = run_guard(prog, 3, use_idempotent_filter=False)
        assert guard.block_work[(0, 0)]["checks"] == 2

    def test_alloc_state_change_rearms_filter(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0), Instr.read(0), Instr.free(0), Instr.malloc(0),
             Instr.read(0)]
        )
        guard = run_guard(prog, 5)
        assert guard.block_work[(0, 0)]["checks"] == 2


class TestNoFalseNegativesSmoke:
    def test_injected_errors_always_caught(self):
        from repro.lifeguards.reports import compare_reports
        from repro.lifeguards.sequential import SequentialAddrCheck
        from repro.trace.generator import simulated_alloc_program

        for seed in range(20):
            rng = random.Random(seed)
            prog = simulated_alloc_program(
                rng, num_threads=3, total_events=60, num_locations=6,
                inject_error_rate=0.15,
            )
            truth = SequentialAddrCheck()
            truth.run_order(prog)
            from repro.core.epoch import partition_by_global_order
            guard = ButterflyAddrCheck()
            ButterflyEngine(guard).run(partition_by_global_order(prog, 5))
            pr = compare_reports(
                truth.errors, guard.errors, prog.memory_op_count
            )
            assert pr.false_negatives == 0, seed
