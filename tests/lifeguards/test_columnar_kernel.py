"""Bit-identity of the vectorized AddrCheck first-pass kernel.

The columnar kernel must produce *exactly* the scalar kernel's
:class:`AddrScan` -- same summary sets, same error records in the same
order, same counters, same mutation of the running LSOS -- for any
block, or differential modes downstream would drown in kernel noise.
These tests formalize that contract over random, adversarial, and
hand-picked corner-case blocks; the fuzz campaign's ``columnar`` mode
extends the same check end to end.
"""

import pickle
import random

import pytest

from repro.core.columnar import HAVE_NUMPY
from repro.core.epoch import Block
from repro.lifeguards.addrcheck import AddrScanner, ButterflyAddrCheck
from repro.trace.events import Instr, Op
from repro.trace.generator import adversarial_instrs

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vector kernel requires numpy"
)

_ALL_OPS = (Op.WRITE, Op.READ, Op.MALLOC, Op.FREE, Op.ASSIGN,
            Op.TAINT, Op.UNTAINT, Op.JUMP, Op.NOP)


def _scan_dict(scan):
    return {
        "gen": scan.gen,
        "all_gen": scan.all_gen,
        "killed_vars": scan.killed_vars,
        "last_event": scan.last_event,
        "access": scan.access,
        "first_change": scan.first_change,
        "first_access": scan.first_access,
        "errors": scan.errors,
        "events": scan.events,
        "checks": scan.checks,
        "accesses": scan.accesses,
        "allocs": scan.allocs,
    }


def _assert_kernels_agree(instrs, running, use_filter):
    block = Block(0, 0, 0, tuple(instrs))
    running_obj = set(running)
    running_col = set(running)
    obj = AddrScanner(use_filter, columnar=False)(block, running_obj)
    col = AddrScanner(use_filter, columnar=True)(block, running_col)
    assert _scan_dict(col) == _scan_dict(obj)
    assert running_col == running_obj
    # Results must be built from plain Python ints, not numpy scalars:
    # summaries feed sets/dicts that are later pickled and interned.
    for x in col.gen | col.access:
        assert type(x) is int


class TestKernelIdentity:
    @pytest.mark.parametrize("use_filter", [True, False])
    def test_corner_cases(self, use_filter):
        cases = [
            [],
            [Instr.nop()],
            [Instr.read(5)],
            [Instr.malloc(3), Instr.read(3), Instr.free(3), Instr.read(3)],
            # Sized extents arm/kill ranges of locations.
            [Instr.malloc(0, size=8), Instr.write(7), Instr.free(2, size=4),
             Instr.read(3), Instr.read(7)],
            # Double malloc / double free / free-before-malloc.
            [Instr.malloc(1), Instr.malloc(1), Instr.free(1),
             Instr.free(1), Instr.write(1)],
            # Change event as the very first and very last event.
            [Instr.malloc(2)],
            [Instr.read(2), Instr.free(2)],
            # ASSIGN reads two sources and writes its destination.
            [Instr.malloc(0, size=3), Instr.assign(0, 1, 2),
             Instr.assign(4, 0)],
            # TAINT/UNTAINT/JUMP mix in non-allocation change-free noise.
            [Instr.taint(1), Instr.jump(1), Instr.untaint(1),
             Instr.read(1)],
            # Same location checked repeatedly (filter's bread and
            # butter) with an intervening re-arm.
            [Instr.read(4)] * 5 + [Instr.malloc(4)] + [Instr.read(4)] * 5,
        ]
        for instrs in cases:
            for running in (set(), {0, 1, 2, 3, 4, 5, 6, 7}, {2}):
                _assert_kernels_agree(instrs, running, use_filter)

    @pytest.mark.parametrize("use_filter", [True, False])
    def test_random_blocks(self, use_filter):
        rng = random.Random(97 + use_filter)
        for trial in range(60):
            instrs = adversarial_instrs(
                rng,
                rng.randrange(0, 120),
                num_locations=12,
                ops=_ALL_OPS,
                hot_locations=(1, 2, 3) if trial % 3 == 0 else None,
                straddle_stride=4 if trial % 2 == 0 else 0,
                max_extent=6,
            )
            running = {
                loc for loc in range(16) if rng.random() < 0.5
            }
            _assert_kernels_agree(instrs, running, use_filter)

    def test_error_order_matches_event_order(self):
        """Errors must come out in event order even though the vector
        kernel discovers them per-segment via sorted unique locations."""
        instrs = [Instr.read(9), Instr.write(3), Instr.read(7),
                  Instr.malloc(5), Instr.read(9), Instr.write(3)]
        block = Block(0, 0, 0, tuple(instrs))
        scan = AddrScanner(True, columnar=True)(block, set())
        indices = [err[2] for err in scan.errors]
        assert indices == sorted(indices)


class TestPoolPayload:
    """The processes-backend fix: a first-pass task's payload is columnar
    bytes plus a location set -- never ``Instr`` object trees and never
    anything owned by the guard's ``BitInterner``."""

    def _payload(self):
        guard = ButterflyAddrCheck(initially_allocated=range(8))
        scanner = guard.make_scanner()
        rng = random.Random(3)
        instrs = adversarial_instrs(rng, 300, num_locations=8,
                                    ops=_ALL_OPS, max_extent=3)
        block = Block(0, 0, 0, tuple(instrs))
        block.columns  # columnar-backed, as on the streamed fast path
        context = guard.first_pass_context(block)
        return scanner, block, context

    def test_task_payload_is_object_free(self):
        scanner, block, context = self._payload()
        payload = pickle.dumps((scanner, (block, context)))
        assert b"BitInterner" not in payload
        assert b"Instr" not in payload
        assert b"repro.trace.events" not in payload
        assert b"repro.core.bitset" not in payload

    def test_scan_result_is_object_free(self):
        scanner, block, context = self._payload()
        scan = scanner(block, context)
        payload = pickle.dumps(scan)
        assert b"BitInterner" not in payload
        assert b"repro.core.bitset" not in payload
        clone = pickle.loads(payload)
        assert _scan_dict(clone) == _scan_dict(scan)
