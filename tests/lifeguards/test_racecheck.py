"""Tests for the butterfly conflict (race) detector."""

from repro.core.epoch import partition_by_global_order, partition_fixed
from repro.core.framework import ButterflyEngine
from repro.lifeguards.racecheck import ButterflyRaceCheck
from repro.trace.events import Instr
from repro.trace.program import TraceProgram
from repro.workloads.registry import get_benchmark


def run(program, h):
    guard = ButterflyRaceCheck()
    ButterflyEngine(guard).run(partition_fixed(program, h))
    return guard


class TestBasicConflicts:
    def test_concurrent_write_write(self):
        prog = TraceProgram.from_lists([Instr.write(5)], [Instr.write(5)])
        guard = run(prog, 1)
        assert any(r.kind == "write-write" for r in guard.races)

    def test_concurrent_read_write(self):
        prog = TraceProgram.from_lists([Instr.read(5)], [Instr.write(5)])
        guard = run(prog, 1)
        kinds = {r.kind for r in guard.races}
        assert "read-write" in kinds

    def test_concurrent_reads_are_fine(self):
        prog = TraceProgram.from_lists([Instr.read(5)], [Instr.read(5)])
        guard = run(prog, 1)
        assert not guard.races

    def test_disjoint_locations_are_fine(self):
        prog = TraceProgram.from_lists([Instr.write(5)], [Instr.write(6)])
        guard = run(prog, 1)
        assert not guard.races

    def test_same_thread_never_races(self):
        prog = TraceProgram.from_lists(
            [Instr.write(5), Instr.write(5), Instr.read(5)]
        )
        guard = run(prog, 1)
        assert not guard.races

    def test_two_epoch_separation_is_ordered(self):
        prog = TraceProgram.from_lists(
            [Instr.write(5), Instr.nop(), Instr.nop(), Instr.nop()],
            [Instr.nop(), Instr.nop(), Instr.nop(), Instr.write(5)],
        )
        guard = run(prog, 1)
        assert not guard.races

    def test_adjacent_epoch_conflict_detected(self):
        prog = TraceProgram.from_lists(
            [Instr.write(5), Instr.nop()],
            [Instr.nop(), Instr.write(5)],
        )
        guard = run(prog, 1)
        assert guard.races

    def test_malloc_free_act_as_writes(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(5)], [Instr.read(5)]
        )
        guard = run(prog, 1)
        assert guard.races


class TestOnWorkloads:
    def test_blackscholes_is_race_free(self):
        # Thread-private data: no conflicts at any epoch size.
        prog = get_benchmark("BLACKSCHOLES").generate(4, 4000, seed=3)
        guard = ButterflyRaceCheck()
        ButterflyEngine(guard).run(partition_by_global_order(prog, 512))
        assert not guard.races

    def test_ocean_handoffs_surface_at_large_epochs(self):
        prog = get_benchmark("OCEAN").generate(4, 8192, seed=3)
        small = ButterflyRaceCheck()
        ButterflyEngine(small).run(partition_by_global_order(prog, 256))
        large = ButterflyRaceCheck()
        ButterflyEngine(large).run(partition_by_global_order(prog, 4096))
        # The boundary-buffer handoffs are unsynchronized *within the
        # window*: with a big window they are flagged as potential
        # races; with a small one they are provably ordered.
        assert len(large.races) > len(small.races)

    def test_summaries_evicted(self):
        prog = get_benchmark("LU").generate(2, 4000, seed=3)
        guard = ButterflyRaceCheck()
        ButterflyEngine(guard).run(partition_by_global_order(prog, 256))
        # Only the trailing window worth of summaries is retained.
        assert len(guard._summaries) <= 3 * prog.num_threads
