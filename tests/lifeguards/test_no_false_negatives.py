"""Integration tests for Theorems 6.1 and 6.2: zero false negatives.

The strongest form: enumerate EVERY valid ordering of a small trace,
collect every error the original sequential lifeguard reports on any of
them, and assert the butterfly lifeguard flags each one.  Because the
valid orderings are a superset of real machine orderings (SC or
relaxed, given intra-thread dependences and cache coherence), this
implies the paper's theorems for the traces tested.
"""

import random

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.core.ordering import all_valid_orderings
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.sequential import (
    SequentialAddrCheck,
    SequentialTaintCheck,
)
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.trace.events import Instr, Op
from repro.trace.generator import random_program
from repro.trace.program import TraceProgram


def oracle_errors(partition, lifeguard_cls):
    """Union of sequential-lifeguard errors over all valid orderings,
    as (instruction id, location) pairs."""
    found = set()
    for order in all_valid_orderings(partition):
        guard = lifeguard_cls()
        for iid in order:
            guard.process(iid, partition.instr(iid))
        for report in guard.errors:
            found.add((report.ref, report.location))
    return found


def butterfly_flags(partition, guard):
    ButterflyEngine(guard).run(partition)
    flags = set()
    block_locs = set()
    for r in guard.errors:
        if r.ref is not None:
            flags.add((r.ref, r.location))
        if r.block is not None:
            block_locs.add(r.location)
    return flags, block_locs


def to_global(partition, oracle):
    """Oracle refs are instruction ids; butterfly refs are global refs.
    Convert oracle (iid, loc) to (global_ref, loc)."""
    return {
        (partition.global_ref_of(iid), loc) for iid, loc in oracle
    }


class TestAddrCheckTheorem61:
    @pytest.mark.parametrize("seed", range(25))
    def test_every_oracle_error_is_flagged(self, seed):
        rng = random.Random(seed)
        prog = random_program(
            rng,
            num_threads=2,
            length=4,
            num_locations=3,
            ops=(Op.MALLOC, Op.FREE, Op.READ, Op.WRITE, Op.NOP),
        )
        part = partition_fixed(prog, 2)
        oracle = to_global(part, oracle_errors(part, SequentialAddrCheck))
        # Exact per-event coverage requires the idempotent filter off
        # (the filter coalesces repeated checks of a location within an
        # epoch onto the first occurrence).
        guard = ButterflyAddrCheck(use_idempotent_filter=False)
        flags, block_locs = butterfly_flags(part, guard)
        for ref, loc in oracle:
            assert (ref, loc) in flags or loc in block_locs, (
                f"seed {seed}: missed error at {ref} loc {loc}"
            )

    @pytest.mark.parametrize("seed", range(25))
    def test_filtered_variant_still_covers_every_location(self, seed):
        """With idempotent filtering on, every erroneous location is
        still flagged at least once per epoch (the filter only drops
        repeats whose conclusion cannot change)."""
        rng = random.Random(seed)
        prog = random_program(
            rng,
            num_threads=2,
            length=4,
            num_locations=3,
            ops=(Op.MALLOC, Op.FREE, Op.READ, Op.WRITE, Op.NOP),
        )
        part = partition_fixed(prog, 2)
        oracle = to_global(part, oracle_errors(part, SequentialAddrCheck))
        guard = ButterflyAddrCheck()
        flags, block_locs = butterfly_flags(part, guard)
        flagged_locs = {loc for _, loc in flags} | block_locs
        for _ref, loc in oracle:
            assert loc in flagged_locs, seed

    def test_three_threads_small(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(0), Instr.free(0)],
            [Instr.read(0), Instr.write(1)],
            [Instr.malloc(1), Instr.free(1)],
        )
        part = partition_fixed(prog, 1)
        oracle = to_global(part, oracle_errors(part, SequentialAddrCheck))
        guard = ButterflyAddrCheck()
        flags, block_locs = butterfly_flags(part, guard)
        for ref, loc in oracle:
            assert (ref, loc) in flags or loc in block_locs


class TestTaintCheckTheorem62:
    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("mode", ["relaxed", "sc"])
    def test_every_oracle_error_is_flagged(self, seed, mode):
        rng = random.Random(seed)
        prog = random_program(
            rng,
            num_threads=2,
            length=4,
            num_locations=3,
            ops=(Op.TAINT, Op.UNTAINT, Op.ASSIGN, Op.JUMP, Op.NOP),
        )
        part = partition_fixed(prog, 2)
        oracle = to_global(part, oracle_errors(part, SequentialTaintCheck))
        guard = ButterflyTaintCheck(mode=mode)
        flags, _ = butterfly_flags(part, guard)
        for ref, loc in oracle:
            assert (ref, loc) in flags, (
                f"seed {seed} mode {mode}: missed tainted jump at {ref}"
            )

    def test_relaxed_flags_superset_of_sc(self):
        # SC restricts the orderings considered, so its flag set can
        # only shrink relative to relaxed mode.
        for seed in range(15):
            rng = random.Random(seed + 500)
            prog = random_program(
                rng,
                num_threads=2,
                length=5,
                num_locations=3,
                ops=(Op.TAINT, Op.UNTAINT, Op.ASSIGN, Op.JUMP),
            )
            part = partition_fixed(prog, 2)
            relaxed = ButterflyTaintCheck(mode="relaxed")
            sc = ButterflyTaintCheck(mode="sc")
            rflags, _ = butterfly_flags(part, relaxed)
            part2 = partition_fixed(prog, 2)
            ButterflyEngine(sc).run(part2)
            sflags = {
                (r.ref, r.location) for r in sc.errors if r.ref is not None
            }
            assert sflags <= rflags, seed


class TestSkewedHeartbeats:
    """Zero false negatives must survive heartbeat skew (unequal block
    boundaries)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_addrcheck_with_skew(self, seed):
        from repro.core.epoch import partition_with_skew

        rng = random.Random(seed)
        prog = random_program(
            rng,
            num_threads=2,
            length=4,
            num_locations=3,
            ops=(Op.MALLOC, Op.FREE, Op.READ, Op.WRITE),
        )
        part = partition_with_skew(prog, 3, 1, rng=random.Random(seed))
        oracle = to_global(part, oracle_errors(part, SequentialAddrCheck))
        guard = ButterflyAddrCheck(use_idempotent_filter=False)
        flags, block_locs = butterfly_flags(part, guard)
        for ref, loc in oracle:
            assert (ref, loc) in flags or loc in block_locs, seed
