"""Bit-identity of the vectorized TaintCheck first-pass kernel.

The columnar :class:`TaintScanner` must produce *exactly* the scalar
kernel's :class:`TaintSummary` -- same rules per location in the same
program order, same dict insertion order, same BOT/TOP singletons, same
critical-use list, plain Python ints throughout -- for any block.
Without numpy (``REPRO_NO_NUMPY=1``) the ``columnar=True`` scanner
falls back to the scalar path, so this module runs (and must pass)
under both backends; the vector-vs-scalar comparison is only
non-trivial on the numpy leg, which is why CI runs it twice.
"""

import pickle
import random

import pytest

from repro.core.columnar import HAVE_NUMPY, ColumnarBlock
from repro.core.epoch import Block, partition_from_boundaries
from repro.core.framework import ButterflyEngine
from repro.lifeguards.taintcheck import (
    BOT,
    TOP,
    ButterflyTaintCheck,
    TaintScanner,
)
from repro.trace.events import Instr, Op
from repro.trace.generator import adversarial_instrs
from repro.trace.program import ThreadTrace, TraceProgram
from repro.verify.generator import FAMILIES, AdversarialCaseGenerator

_ALL_OPS = (Op.WRITE, Op.READ, Op.MALLOC, Op.FREE, Op.ASSIGN,
            Op.TAINT, Op.UNTAINT, Op.JUMP, Op.NOP)


def _summary_dict(summary):
    return {
        "block_id": summary.block_id,
        "rules": summary.rules,
        # Dict equality ignores insertion order; the kernels must also
        # agree on it (downstream iteration order feeds LASTCHECK).
        "rule_order": list(summary.rules),
        "jumps": summary.jumps,
        "lastcheck": summary.lastcheck,
    }


def _assert_kernels_agree(instrs, lid=0, tid=0):
    block = Block(lid, tid, 0, tuple(instrs))
    obj = TaintScanner(columnar=False)(block, None)
    col = TaintScanner(columnar=True)(block, None)
    assert _summary_dict(col) == _summary_dict(obj)
    # Values must be the BOT/TOP singletons (``is`` checks everywhere)
    # over plain Python ints, never numpy scalars.
    for loc, writes in col.rules.items():
        assert type(loc) is int
        for offset, value in writes:
            assert type(offset) is int
            if value is not BOT and value is not TOP:
                assert type(value) is tuple
                for parent in value:
                    assert type(parent) is int
    for offset, loc in col.jumps:
        assert type(offset) is int
        assert type(loc) is int


class TestKernelIdentity:
    def test_corner_cases(self):
        cases = [
            [],
            [Instr.nop()],
            [Instr.read(5)],
            # Every rule-producing op, plus a critical use.
            [Instr.taint(1), Instr.untaint(2), Instr.write(3),
             Instr.assign(4, 1, 2), Instr.jump(4)],
            # ASSIGN with one source and (via raw Instr) with none --
            # the no-source ASSIGN resolves to TOP.
            [Instr.assign(0, 1), Instr(Op.ASSIGN, dst=2)],
            # Repeated writes to one location: program order of the
            # per-location rule list must survive vectorization.
            [Instr.taint(6), Instr.write(6), Instr.assign(6, 6),
             Instr.untaint(6), Instr.taint(6)],
            # Rule-free noise around a single JUMP.
            [Instr.read(1), Instr.malloc(2, size=4), Instr.jump(1),
             Instr.free(2, size=4), Instr.nop()],
            # Block with no relevant events at all.
            [Instr.read(0), Instr.nop(), Instr.malloc(5)],
            # JUMP first and last.
            [Instr.jump(3)],
            [Instr.taint(3), Instr.jump(3)],
        ]
        for instrs in cases:
            _assert_kernels_agree(instrs)

    def test_random_blocks(self):
        rng = random.Random(41)
        for trial in range(60):
            instrs = adversarial_instrs(
                rng,
                rng.randrange(0, 120),
                num_locations=12,
                ops=_ALL_OPS,
                hot_locations=(1, 2, 3) if trial % 3 == 0 else None,
                straddle_stride=4 if trial % 2 == 0 else 0,
                max_extent=6,
            )
            _assert_kernels_agree(instrs, lid=trial % 5, tid=trial % 3)

    def test_every_adversarial_family(self):
        """Replay every generator family's blocks through both kernels.

        The families cover the historically hard shapes (wing-heavy
        conflicts, epoch-boundary state changes, single-instruction
        blocks, empty threads, page straddles, taint chains); the
        kernels must agree on each block of each case regardless of the
        case's target lifeguard.
        """
        gen = AdversarialCaseGenerator(seed=23)
        seen = set()
        for index in range(4 * len(FAMILIES)):
            case = gen.case(index)
            seen.add(case.label)
            partition = case.partition()
            for block in partition.iter_blocks():
                _assert_kernels_agree(block.instrs, *block.block_id)
        assert seen == set(FAMILIES)

    def test_auto_select_prefers_columnar_backing(self):
        """``columnar=None`` uses the vector kernel iff the block is
        already columnar-backed -- and both choices agree anyway."""
        instrs = (Instr.taint(1), Instr.assign(2, 1), Instr.jump(2))
        obj_block = Block(0, 0, 0, instrs)
        col_block = Block(0, 0, 0, columns=ColumnarBlock.from_instrs(instrs))
        auto = TaintScanner()
        assert _summary_dict(auto(obj_block, None)) == _summary_dict(
            auto(col_block, None)
        )
        if HAVE_NUMPY:
            # Auto never materializes objects on the columnar path.
            assert col_block._instrs is None


class TestEngineIdentity:
    """Forced-kernel engine runs must agree end to end: errors (in
    stream order), engine stats, and resolved LASTCHECK state."""

    def _case_runs(self, seed):
        gen = AdversarialCaseGenerator(seed=seed)
        # Family index 5 is taint_chain; take several of them.
        for index in range(5, 5 + 6 * len(FAMILIES), len(FAMILIES)):
            case = gen.case(index)
            assert case.lifeguard == "taintcheck"
            runs = []
            for kernel in (False, True):
                guard = ButterflyTaintCheck(use_columnar_kernel=kernel)
                with ButterflyEngine(guard) as engine:
                    engine.run(case.partition())
                runs.append((guard, engine.stats))
            yield case, runs

    def test_errors_and_stats_identical(self):
        for case, ((obj_guard, obj_stats), (col_guard, col_stats)) in (
            self._case_runs(11)
        ):
            obj_ids = [r.identity() for r in obj_guard.errors]
            col_ids = [r.identity() for r in col_guard.errors]
            assert col_ids == obj_ids, case.label
            assert col_stats == obj_stats, case.label

    def test_error_order_is_stream_position(self):
        """Within one block the flagged jumps come out ordered by
        stream position under either kernel."""
        instrs = [Instr.taint(1), Instr.jump(1), Instr.taint(2),
                  Instr.jump(2), Instr.jump(1)]
        for kernel in (False, True):
            guard = ButterflyTaintCheck(use_columnar_kernel=kernel)
            program = TraceProgram([ThreadTrace(list(instrs))])
            partition = partition_from_boundaries(program, [[len(instrs)]])
            with ButterflyEngine(guard) as engine:
                engine.run(partition)
            offsets = [r.ref[1] for r in guard.errors]
            assert offsets == sorted(offsets)
            assert len(offsets) == 3


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector kernel requires numpy")
class TestPoolPayload:
    """A taint first-pass task on the columnar path ships the scanner,
    column bytes and a ``None`` context -- no ``Instr`` object trees."""

    def test_task_payload_is_object_free(self):
        guard = ButterflyTaintCheck()
        scanner = guard.make_scanner()
        rng = random.Random(3)
        instrs = adversarial_instrs(rng, 300, num_locations=8,
                                    ops=_ALL_OPS, max_extent=3)
        block = Block(0, 0, 0, tuple(instrs))
        block.columns  # columnar-backed, as on the streamed fast path
        context = guard.first_pass_context(block)
        payload = pickle.dumps((scanner, (block, context)))
        assert b"Instr" not in payload
        assert b"repro.trace.events" not in payload
