"""Unit tests for error reports and precision accounting."""

from repro.lifeguards.reports import (
    ErrorKind,
    ErrorLog,
    ErrorReport,
    compare_reports,
)


def report(kind=ErrorKind.ACCESS_UNALLOCATED, loc=1, ref=(0, 0), block=None):
    return ErrorReport(kind, loc, ref=ref, block=block)


class TestErrorLog:
    def test_flag_and_iterate(self):
        log = ErrorLog()
        assert log.flag(report())
        assert len(log) == 1

    def test_dedup_identical(self):
        log = ErrorLog()
        assert log.flag(report())
        assert not log.flag(report())
        assert len(log) == 1

    def test_different_kind_not_deduped(self):
        log = ErrorLog()
        log.flag(report(kind=ErrorKind.ACCESS_UNALLOCATED))
        log.flag(report(kind=ErrorKind.UNSAFE_ISOLATION))
        assert len(log) == 2

    def test_by_kind(self):
        log = ErrorLog()
        log.flag(report(kind=ErrorKind.FREE_UNALLOCATED))
        log.flag(report(kind=ErrorKind.MALLOC_ALLOCATED, loc=2))
        assert len(log.by_kind(ErrorKind.FREE_UNALLOCATED)) == 1

    def test_flagged_events(self):
        log = ErrorLog()
        log.flag(report(loc=5, ref=(1, 3)))
        assert log.flagged_events() == {((1, 3), 5)}


class TestCompareReports:
    def test_all_false_positives_on_clean_truth(self):
        flagged = [report(loc=1), report(loc=2, ref=(0, 1))]
        pr = compare_reports([], flagged, memory_ops=100)
        assert pr.false_positives == 2
        assert pr.true_positives == 0
        assert pr.false_negatives == 0
        assert pr.false_positive_rate == 0.02

    def test_true_positive_matching(self):
        truth = [report(loc=1, ref=(0, 0))]
        flagged = [report(loc=1, ref=(0, 0))]
        pr = compare_reports(truth, flagged, memory_ops=10)
        assert pr.true_positives == 1
        assert pr.false_positives == 0
        assert pr.false_negatives == 0

    def test_false_negative_detected(self):
        truth = [report(loc=1, ref=(0, 0))]
        pr = compare_reports(truth, [], memory_ops=10)
        assert pr.false_negatives == 1

    def test_block_granularity_flag_credits_location(self):
        truth = [report(loc=7, ref=(1, 5))]
        flagged = [
            ErrorReport(
                ErrorKind.UNSAFE_ISOLATION, 7, ref=(0, 2), block=(3, 0)
            )
        ]
        pr = compare_reports(truth, flagged, memory_ops=10)
        assert pr.false_negatives == 0

    def test_zero_memory_ops_rate(self):
        pr = compare_reports([], [], memory_ops=0)
        assert pr.false_positive_rate == 0.0
