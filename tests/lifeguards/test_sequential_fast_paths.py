"""The sequential guards' columnar fast paths and the memoized oracle.

``SequentialAddrCheck``/``SequentialTaintCheck.process_block`` select a
vector kernel on columnar-backed blocks under numpy; these tests pin
that kernel to the per-``Instr`` ``process`` loop -- identical error
reports (content *and* order), metadata state, and event counts.  Under
``REPRO_NO_NUMPY=1`` the gate falls back to the object path and the
same assertions hold trivially, so the module runs on both backends.

``true_errors_under_any_ordering`` replays only the divergent suffix of
each consecutive ordering; the trial-count tests assert both the union
(vs. a naive fresh-guard-per-ordering sweep) and the exact number of
events replayed.
"""

import random

import pytest

from repro.core.columnar import HAVE_NUMPY, ColumnarBlock
from repro.core.epoch import Block, partition_from_boundaries
from repro.core.ordering import all_valid_orderings
from repro.lifeguards.sequential import (
    SequentialAddrCheck,
    SequentialTaintCheck,
    true_errors_under_any_ordering,
)
from repro.trace.events import Instr, Op
from repro.trace.generator import adversarial_instrs
from repro.trace.program import TraceProgram
from repro.verify.generator import FAMILIES, AdversarialCaseGenerator

_ALL_OPS = (
    Op.READ, Op.WRITE, Op.MALLOC, Op.FREE, Op.ASSIGN,
    Op.TAINT, Op.UNTAINT, Op.JUMP, Op.NOP,
)


def _make_guard(lifeguard, preallocated=()):
    if lifeguard == "addrcheck":
        return SequentialAddrCheck(preallocated)
    return SequentialTaintCheck()


def _guard_state(guard):
    meta = (
        guard.allocated
        if isinstance(guard, SequentialAddrCheck)
        else guard.tainted
    )
    return {
        "meta": set(meta),
        "events": guard.events_processed,
        "errors": [(r.identity(), r.detail) for r in guard.errors],
    }


def _assert_block_kernels_agree(
    instrs, lifeguard, preallocated=(), lid=0, tid=1, start=5
):
    """Columnar ``process_block`` == scalar ``process`` replay."""
    scalar = _make_guard(lifeguard, preallocated)
    for i, instr in enumerate(instrs):
        scalar.process((tid, start + i), instr)

    block = Block(
        lid, tid, start, columns=ColumnarBlock.from_instrs(tuple(instrs))
    )
    fast = _make_guard(lifeguard, preallocated)
    fast.process_block(block)
    assert _guard_state(fast) == _guard_state(scalar)


class TestBlockKernelIdentity:
    def test_addrcheck_corner_cases(self):
        cases = [
            [],
            [Instr.nop()],
            [Instr.read(3)],                      # access before malloc
            [Instr.malloc(0, 4), Instr.read(2), Instr.free(0, 4),
             Instr.read(2)],                      # use after free
            [Instr.malloc(1), Instr.malloc(1)],   # double malloc
            [Instr.free(9), Instr.free(9)],       # double free
            [Instr.assign(2, 7, 8)],              # srcs then dst order
            [Instr.write(5), Instr.jump(5)],
            [Instr.malloc(0, 3), Instr.assign(1, 0, 2),
             Instr.free(1), Instr.assign(1, 0, 2)],
            [Instr.taint(4), Instr.untaint(4)],   # taint ops: no access
        ]
        for instrs in cases:
            _assert_block_kernels_agree(instrs, "addrcheck")
            _assert_block_kernels_agree(instrs, "addrcheck",
                                        preallocated=range(4))

    def test_taintcheck_corner_cases(self):
        cases = [
            [],
            [Instr.jump(3)],
            [Instr.taint(3), Instr.jump(3)],
            [Instr.taint(3), Instr.write(3), Instr.jump(3)],
            [Instr.taint(1), Instr.assign(2, 1), Instr.jump(2)],
            [Instr.taint(1), Instr.assign(2, 1), Instr.assign(2, 0),
             Instr.jump(2)],                      # untaint via assign
            [Instr.taint(1), Instr.untaint(1), Instr.jump(1)],
            [Instr.jump(4), Instr.taint(4), Instr.jump(4),
             Instr.jump(4)],                      # dedup by identity? no:
                                                  # distinct refs
            [Instr.malloc(0, 8), Instr.read(5), Instr.free(0, 8)],
        ]
        for instrs in cases:
            _assert_block_kernels_agree(instrs, "taintcheck")

    def test_random_blocks(self):
        rng = random.Random(47)
        for _ in range(60):
            n = rng.randrange(0, 50)
            instrs = list(
                adversarial_instrs(
                    rng, n, num_locations=6, ops=_ALL_OPS, max_extent=3
                )
            )
            pre = set(rng.sample(range(6), rng.randrange(0, 4)))
            _assert_block_kernels_agree(instrs, "addrcheck",
                                        preallocated=pre)
            _assert_block_kernels_agree(instrs, "taintcheck")

    def test_every_adversarial_family_run_blocks(self):
        """run_blocks over columnar partitions of every generator family
        == the scalar replay of the same block order."""
        gen = AdversarialCaseGenerator(seed=29)
        seen = set()
        for index in range(3 * len(FAMILIES)):
            case = gen.case(index)
            seen.add(case.label)
            partition = case.partition()
            blocks = [
                b
                for lid in range(partition.num_epochs)
                for b in partition.epoch_blocks(lid)
            ]
            scalar = _make_guard(case.lifeguard, case.preallocated)
            for b in blocks:
                for i, instr in enumerate(b.instrs):
                    scalar.process((b.tid, b.start + i), instr)
            fast = _make_guard(case.lifeguard, case.preallocated)
            fast.run_blocks(
                Block(
                    b.lid, b.tid, b.start,
                    columns=ColumnarBlock.from_instrs(b.instrs),
                )
                for b in blocks
            )
            assert _guard_state(fast) == _guard_state(scalar), case.label
        assert seen == set(FAMILIES)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="vector kernel needs numpy")
    def test_fast_path_never_materializes_instrs(self):
        instrs = tuple(
            adversarial_instrs(
                random.Random(3), 40, num_locations=5, ops=_ALL_OPS
            )
        )
        for guard in (SequentialAddrCheck(range(5)), SequentialTaintCheck()):
            block = Block(
                0, 0, 0, columns=ColumnarBlock.from_instrs(instrs)
            )
            guard.process_block(block)
            assert block._instrs is None
            assert guard.events_processed == len(instrs)


def _lcp(a, b):
    k = 0
    limit = min(len(a), len(b))
    while k < limit and a[k] == b[k]:
        k += 1
    return k


def _naive_oracle(partition, orders, lifeguard, preallocated):
    out = {}
    for order in orders:
        guard = _make_guard(lifeguard, preallocated)
        for iid in order:
            guard.process(iid, partition.instr(iid))
        for report in guard.errors:
            out.setdefault(report.identity(), report)
    return out


class TestMemoizedOracle:
    def _programs(self):
        yield "addrcheck", frozenset({0}), TraceProgram.from_lists(
            [Instr.malloc(1), Instr.read(1), Instr.free(1), Instr.read(1)],
            [Instr.read(1), Instr.write(0), Instr.malloc(1), Instr.read(2)],
        )
        yield "taintcheck", frozenset(), TraceProgram.from_lists(
            [Instr.taint(1), Instr.assign(2, 1), Instr.jump(2)],
            [Instr.write(1), Instr.jump(1), Instr.untaint(2), Instr.jump(2)],
        )

    def test_matches_naive_sweep(self):
        for lifeguard, pre, program in self._programs():
            program = TraceProgram(program.threads, preallocated=pre)
            boundaries = [
                [min(2, len(t)), len(t)] for t in program.threads
            ]
            partition = partition_from_boundaries(program, boundaries)
            orders = list(all_valid_orderings(partition))
            assert len(orders) > 1  # prefix sharing is actually exercised
            naive = _naive_oracle(partition, orders, lifeguard, pre)
            stats = {}
            memo = true_errors_under_any_ordering(
                None, orders, lifeguard=lifeguard, preallocated=pre,
                instr_of=partition.instr, stats=stats,
            )
            assert set(memo) == set(naive), lifeguard
            assert all(memo[k].identity() == k for k in memo)
            assert naive, lifeguard  # the cases really contain errors

    def test_trial_count_is_the_suffix_sum(self):
        """The enumerator replays exactly sum(len(order) - lcp(prev,
        order)) events -- and on DFS-enumerated orderings that is far
        below the naive full-replay cost."""
        for lifeguard, pre, program in self._programs():
            program = TraceProgram(program.threads, preallocated=pre)
            boundaries = [
                [min(2, len(t)), len(t)] for t in program.threads
            ]
            partition = partition_from_boundaries(program, boundaries)
            orders = list(all_valid_orderings(partition))
            expected, prev = 0, []
            for order in orders:
                expected += len(order) - _lcp(prev, order)
                prev = order
            stats = {}
            true_errors_under_any_ordering(
                None, orders, lifeguard=lifeguard, preallocated=pre,
                instr_of=partition.instr, stats=stats,
            )
            total = sum(len(o) for o in orders)
            assert stats == {
                "orderings": len(orders),
                "events_total": total,
                "events_replayed": expected,
            }
            # The whole point: DFS siblings share prefixes, so the
            # memoized sweep does strictly less work than naive replay
            # (at least 1.5x on these programs).
            assert expected < total
            assert expected * 3 <= total * 2

    def test_ref_defaults_to_program_instr_at(self):
        program = TraceProgram.from_lists([Instr.jump(3)], [Instr.taint(3)])
        safe = [(0, 0), (1, 0)]   # jump before taint: clean
        bad = [(1, 0), (0, 0)]    # taint first: tainted jump
        out = true_errors_under_any_ordering(
            program, [safe], lifeguard="taintcheck"
        )
        assert out == {}
        out = true_errors_under_any_ordering(
            program, [safe, bad], lifeguard="taintcheck"
        )
        assert len(out) == 1
        with pytest.raises(ValueError):
            true_errors_under_any_ordering(None, [safe])
