"""Theorem 6.1/6.2 under relaxed memory models.

The paper's guarantee covers any machine that respects intra-thread
dependences and provides cache coherence -- not just sequential
consistency.  These tests build the *relaxed* oracle: every bounded
intra-thread reordering of every thread, interleaved every possible
way, is a possible execution; any error the sequential lifeguard finds
on any of them must be flagged by the butterfly lifeguard.
"""

import random

import pytest

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.lifeguards.sequential import (
    SequentialAddrCheck,
    SequentialTaintCheck,
)
from repro.lifeguards.taintcheck import ButterflyTaintCheck
from repro.trace.events import Op
from repro.trace.generator import random_program
from repro.trace.interleave import relaxed_interleavings


def relaxed_oracle(program, lifeguard_cls, window=1):
    """Errors on any relaxed execution, as (global ref, location)."""
    found = set()
    for order in relaxed_interleavings(program, window=window):
        guard = lifeguard_cls()
        for ref in order:
            guard.process(ref, program.instr_at(ref))
        for r in guard.errors:
            found.add((r.ref, r.location))
    return found


class TestAddrCheckRelaxed:
    @pytest.mark.parametrize("seed", range(12))
    def test_relaxed_errors_covered(self, seed):
        rng = random.Random(seed)
        prog = random_program(
            rng, num_threads=2, length=3, num_locations=2,
            ops=(Op.MALLOC, Op.FREE, Op.READ, Op.WRITE),
        )
        oracle = relaxed_oracle(prog, SequentialAddrCheck)
        # Single epoch: the relaxed interleavings are all consistent
        # with the window model.
        guard = ButterflyAddrCheck(use_idempotent_filter=False)
        ButterflyEngine(guard).run(partition_fixed(prog, 10))
        flags = {(r.ref, r.location) for r in guard.errors if r.ref}
        block_locs = {r.location for r in guard.errors if r.block}
        part = partition_fixed(prog, 10)
        for iid_ref, loc in oracle:
            # The oracle's refs are already global (thread, index).
            assert (iid_ref, loc) in flags or loc in block_locs, (
                seed, iid_ref, loc
            )


class TestTaintCheckRelaxed:
    @pytest.mark.parametrize("seed", range(12))
    def test_relaxed_errors_covered_in_relaxed_mode(self, seed):
        rng = random.Random(seed + 300)
        prog = random_program(
            rng, num_threads=2, length=3, num_locations=3,
            ops=(Op.TAINT, Op.UNTAINT, Op.ASSIGN, Op.JUMP),
        )
        oracle = relaxed_oracle(prog, SequentialTaintCheck)
        guard = ButterflyTaintCheck(mode="relaxed")
        ButterflyEngine(guard).run(partition_fixed(prog, 10))
        flags = {(r.ref, r.location) for r in guard.errors}
        for ref, loc in oracle:
            assert (ref, loc) in flags, (seed, ref, loc)

    def test_relaxed_termination_is_conservative_beyond_the_oracle(self):
        """The relaxed termination condition 'will not guarantee that
        the ordering that taints x is actually valid' (Section 6.2):
        the zig-zag chain needs thread 0's anti-dependence (b := a
        before a := c) to be violated, which even our relaxed-hardware
        oracle forbids -- yet the relaxed mode flags it, and the SC
        counters rule it out."""
        from repro.trace.events import Instr
        from repro.trace.program import TraceProgram

        prog = TraceProgram.from_lists(
            [Instr.assign(11, 10), Instr.assign(10, 12)],
            [Instr.taint(12), Instr.jump(11)],
        )
        oracle = relaxed_oracle(prog, SequentialTaintCheck, window=1)
        assert ((1, 1), 11) not in oracle  # no hardware produces it

        relaxed = ButterflyTaintCheck(mode="relaxed")
        ButterflyEngine(relaxed).run(partition_fixed(prog, 2))
        sc = ButterflyTaintCheck(mode="sc")
        ButterflyEngine(sc).run(partition_fixed(prog, 2))
        assert {(r.ref, r.location) for r in relaxed.errors} == {((1, 1), 11)}
        assert len(sc.errors) == 0
