"""White-box tests for TaintCheck's Check-algorithm machinery."""

import pytest

from repro.lifeguards.taintcheck import (
    BOT,
    TOP,
    ButterflyTaintCheck,
    TaintSummary,
    _RuleGraph,
    _strictly_before,
)


def summary(block_id, rules=None, jumps=()):
    s = TaintSummary(block_id=block_id)
    if rules:
        for loc, writes in rules.items():
            s.rules[loc] = list(writes)
    s.jumps = list(jumps)
    return s


def graph(wings, body, mode="relaxed", fallback=None, max_steps=4096):
    guard = ButterflyTaintCheck(mode=mode, max_steps=max_steps)
    return _RuleGraph(wings, body, guard, fallback=fallback)


class TestStrictlyBefore:
    def test_no_bound_allows_anything(self):
        assert _strictly_before((5, 0, 3), None)

    def test_two_epochs_apart(self):
        assert _strictly_before((1, 0, 0), (3, 1, 0))
        assert not _strictly_before((2, 0, 0), (3, 1, 0))

    def test_same_thread_program_order(self):
        assert _strictly_before((2, 1, 3), (2, 1, 4))
        assert not _strictly_before((2, 1, 4), (2, 1, 4))
        assert _strictly_before((1, 1, 9), (2, 1, 0))

    def test_cross_thread_adjacent_rejected(self):
        assert not _strictly_before((2, 0, 0), (2, 1, 0))


class TestLocalAnchoring:
    def test_last_write_before_offset(self):
        body = summary((0, 0), rules={7: [(1, BOT), (3, TOP)]})
        g = graph([], body)
        assert g._local_write_before(7, 2) == (1, BOT)
        assert g._local_write_before(7, 4) == (3, TOP)
        assert g._local_write_before(7, 0) is None
        assert g._local_write_before(8, 5) is None

    def test_local_chain_follows_program_order(self):
        # x <- y at offset 2; y <- BOT at 0, y <- TOP at 1.
        body = summary(
            (0, 0), rules={1: [(2, (2,))], 2: [(0, BOT), (1, TOP)]}
        )
        g = graph([], body)
        assert not g.tainted_parents((2,), 2, set())
        # But before the TOP overwrite the taint is live.
        assert g._local_chain_tainted((2,), 1, frozenset())


class TestWingTaint:
    def test_own_block_rules_not_directly_visible(self):
        # Body taints 5 at a *later* offset: the check at offset 0 must
        # not see it (no wing captured it).
        body = summary((0, 0), rules={5: [(3, BOT)]})
        g = graph([], body)
        assert not g.tainted_parents((5,), 0, set())

    def test_wing_rule_exposes_taint(self):
        wing = summary((0, 1), rules={5: [(0, BOT)]})
        body = summary((0, 0))
        g = graph([wing], body)
        assert g.tainted_parents((5,), 0, set())

    def test_wing_chain_through_own_block(self):
        # A wing copies the body's later taint: z <- 5 in the wing, the
        # body taints 5 afterwards in program order -- but the wing may
        # have read it in between, so a check on z must flag.
        wing = summary((0, 1), rules={9: [(0, (5,))]})
        body = summary((0, 0), rules={5: [(3, BOT)]})
        g = graph([wing], body)
        assert g.tainted_parents((9,), 0, set())

    def test_lsos_base_taints(self):
        body = summary((0, 0))
        g = graph([], body)
        assert g.tainted_parents((5,), 0, {5})
        assert not g.tainted_parents((5,), 0, {6})


class TestSCCounters:
    def test_same_thread_rules_must_descend(self):
        # Wing thread 1: a <- b at offset 4; b <- BOT at offset 6
        # (AFTER): the SC chain a->b->BOT needs thread 1 to go
        # backwards -- rejected; relaxed accepts.
        wing = summary((0, 1), rules={1: [(4, (2,))], 2: [(6, BOT)]})
        body = summary((0, 0))
        for mode, expected in (("relaxed", True), ("sc", False)):
            g = graph([wing], body, mode=mode)
            assert g.tainted_parents((1,), 0, set()) is expected

    def test_descending_chain_accepted_under_sc(self):
        wing = summary((0, 1), rules={1: [(4, (2,))], 2: [(2, BOT)]})
        body = summary((0, 0))
        g = graph([wing], body, mode="sc")
        assert g.tainted_parents((1,), 0, set())

    def test_cross_thread_hops_unconstrained_first_use(self):
        wing1 = summary((0, 1), rules={1: [(0, (2,))]})
        wing2 = summary((0, 2), rules={2: [(5, BOT)]})
        body = summary((0, 0))
        g = graph([wing1, wing2], body, mode="sc")
        assert g.tainted_parents((1,), 0, set())


class TestPhaseFallback:
    def test_phase2_leaf_consults_phase1(self):
        # Phase 1 (epochs l-1, l) taints y; phase 2 (epochs l, l+1) has
        # a chain x -> y with no taint of its own: Lemma 6.3 case 3.
        p1_wing = summary((0, 1), rules={7: [(0, BOT)]})
        body = summary((1, 0))
        phase1 = graph([p1_wing], body)
        p2_wing = summary((2, 1), rules={3: [(0, (7,))]})
        g2 = graph([p2_wing], body, fallback=phase1)
        assert g2.tainted_parents((3,), 0, set())

    def test_phase2_without_fallback_match_misses(self):
        body = summary((1, 0))
        p2_wing = summary((2, 1), rules={3: [(0, (7,))]})
        g2 = graph([p2_wing], body, fallback=None)
        assert not g2.tainted_parents((3,), 0, set())

    def test_query_memoization(self):
        p1_wing = summary((0, 1), rules={7: [(0, BOT)]})
        body = summary((1, 0))
        phase1 = graph([p1_wing], body)
        assert phase1.query_taint(7, frozenset())
        assert phase1._query_memo[7] is True
        assert phase1.query_taint(7, frozenset())

    def test_cyclic_rules_terminate(self):
        wing = summary(
            (0, 1), rules={1: [(0, (2,))], 2: [(1, (1,))]}
        )
        body = summary((0, 0))
        for mode in ("relaxed", "sc"):
            g = graph([wing], body, mode=mode)
            assert not g.tainted_parents((1,), 0, set())
