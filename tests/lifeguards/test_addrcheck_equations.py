"""AddrCheck's SOS/LSOS equations, exercised directly.

AddrCheck instantiates the reaching-expressions rules with allocation
elements (Section 6.1); these tests pin the epoch-level GEN/KILL and
the LSOS construction at that instantiation.
"""

from repro.core.epoch import partition_fixed
from repro.core.framework import ButterflyEngine
from repro.lifeguards.addrcheck import ButterflyAddrCheck
from repro.trace.events import Instr
from repro.trace.program import TraceProgram


def run(program, h, **kwargs):
    guard = ButterflyAddrCheck(**kwargs)
    ButterflyEngine(guard).run(partition_fixed(program, h))
    return guard


class TestEpochGen:
    def test_isolated_allocation_enters_sos(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(5)] + [Instr.nop()] * 3,
            [Instr.nop()] * 4,
        )
        guard = run(prog, 1)
        assert 5 in guard.sos.get(2)

    def test_concurrent_free_blocks_epoch_gen(self):
        # Thread 0 allocates while thread 1 frees the same location in
        # the same epoch: no ordering guarantee, so the allocation must
        # NOT be promised by the SOS.
        prog = TraceProgram.from_lists(
            [Instr.malloc(5), Instr.nop(), Instr.nop(), Instr.nop()],
            [Instr.free(5), Instr.nop(), Instr.nop(), Instr.nop()],
        )
        guard = run(prog, 1, initially_allocated=[5])
        assert 5 not in guard.sos.get(2)

    def test_both_threads_allocating_enters_sos(self):
        prog = TraceProgram.from_lists(
            [Instr.malloc(5), Instr.nop(), Instr.nop(), Instr.nop()],
            [Instr.malloc(5), Instr.nop(), Instr.nop(), Instr.nop()],
        )
        guard = run(prog, 1)
        # (Flagged as a double allocation, but the location is
        # certainly allocated afterwards under every ordering.)
        assert 5 in guard.sos.get(2)


class TestEpochKill:
    def test_free_removes_from_sos(self):
        prog = TraceProgram.from_lists(
            [Instr.free(5)] + [Instr.nop()] * 3,
        )
        guard = run(prog, 1, initially_allocated=[5])
        assert 5 not in guard.sos.get(2)

    def test_free_then_realloc_same_block_stays(self):
        prog = TraceProgram.from_lists(
            [Instr.free(5), Instr.malloc(5), Instr.nop(), Instr.nop()],
        )
        guard = run(prog, 2, initially_allocated=[5])
        assert 5 in guard.sos.get(guard.sos.frontier)


class TestLSOS:
    def test_head_allocation_visible_to_body(self):
        # Alloc in epoch 0 (head of body epoch 1): the body's access
        # must be clean even though the SOS lags.
        prog = TraceProgram.from_lists(
            [Instr.malloc(5), Instr.read(5)],
        )
        guard = run(prog, 1)
        assert len(guard.errors) == 0

    def test_sibling_free_in_l_minus_2_poisons_head_alloc(self):
        # Head allocates in epoch 1; sibling frees the same location in
        # epoch 0 (adjacent to the head!): the allocation's visibility
        # is not guaranteed at the body... but a free of an unallocated
        # location is itself flagged.  The key assertion: the body's
        # access is conservatively flagged.
        prog = TraceProgram.from_lists(
            [Instr.nop(), Instr.malloc(5), Instr.read(5), Instr.nop()],
            [Instr.free(5), Instr.nop(), Instr.nop(), Instr.nop()],
        )
        guard = run(prog, 1, initially_allocated=[5])
        flagged_refs = {r.ref for r in guard.errors if r.ref}
        assert (0, 2) in flagged_refs  # the read at thread 0, index 2
