PYTHON ?= python

.PHONY: test smoke bench

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Benchmark-suite smoke run: correctness assertions only, timing
# comparisons skipped (REPRO_CI) and pytest-benchmark timing disabled.
smoke:
	REPRO_CI=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_microbench_core.py -q --benchmark-disable

# Wall-clock perf baseline: writes BENCH_1.json (see docs/usage.md).
bench:
	PYTHONPATH=src $(PYTHON) -m repro bench --output BENCH_1.json
